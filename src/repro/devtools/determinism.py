"""Determinism lint: machine-checking the bit-identity invariant.

The reproduction's core claim is that the packed/kernelized engine is
**bit-identical** to the scalar oracle — interference ordering exact,
reports reproducible run to run, worker to worker.  Everything that
threatens that is some flavor of hidden nondeterminism; this analyzer
flags the four flavors that actually bite, over ``core/wavepipe`` and
``serve``:

``determinism-unordered-iter``
    Iteration over an inferred-unordered collection (``set`` literals,
    ``set()``/``frozenset()`` results, set comprehensions, set-typed
    annotations, set operators) in an order-sensitive position: a
    ``for`` loop, a list/generator/dict comprehension, ``list()`` /
    ``tuple()`` / ``enumerate()`` / ``zip()`` / ``join()`` /
    ``reversed()`` / ``dict()``, or an argument to packing/merging/
    planning code.  ``sorted(...)`` canonicalizes and silences the
    rule; membership tests, ``len``, ``min``/``max``, ``any``/``all``
    and set-to-set comprehensions are order-insensitive and never flag.
``determinism-unseeded-rng``
    Module-global RNG state (``random.random()``, ``np.random.*``) or
    an RNG constructed without a seed (``random.Random()``,
    ``np.random.default_rng()``): results change run to run.
``determinism-wallclock``
    A wall-clock read (``time.time``/``perf_counter``/``monotonic``,
    ``datetime.now``) flowing somewhere other than metrics/deadline
    plumbing: returned from a non-timing function, stored into a
    non-timing attribute, or passed positionally into packing/
    simulation code.  Deadlines, latency metrics, and linger logic are
    the legitimate uses and are recognized by name.
``determinism-float-reduction``
    A float reduction (``sum``, ``math.fsum``, ``np.sum``, ``mean``)
    over an inferred-unordered iterable: float addition is not
    associative, so the result depends on iteration order.
``determinism-hash``
    Builtin ``hash()``: seeded per process (``PYTHONHASHSEED``), so
    any cross-process or cross-run meaning is nondeterministic.
    Within-process uses are legitimate and carry a suppression.

Unordered-ness and wall-clock taint are tracked through assignments
with a forward dataflow pass over :mod:`repro.devtools.dataflow`'s CFG,
so a set bound three statements before the loop that iterates it is
still caught.  Suppress with ``# lint: determinism-ok(reason)`` (or a
rule-specific ``determinism-unordered-iter-ok(...)`` etc.).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .dataflow import CFG, FunctionNode, Node, function_defs, solve_forward
from .report import Finding, Suppressions, apply_suppressions

#: names whose value is a timestamp when called
_WALLCLOCK_FUNCS = frozenset(
    {
        "time",
        "perf_counter",
        "monotonic",
        "time_ns",
        "perf_counter_ns",
        "monotonic_ns",
        "now",
        "utcnow",
        "today",
    }
)

#: identifiers that legitimately hold/receive timestamps
_TIMING_NAME_RE = re.compile(
    r"(time|clock|now|deadline|elapsed|latency|timeout|linger|expir"
    r"|start|began|end|duration|budget|wall|uptime|age|stamp|wait"
    r"|_s$|_ns$|_at$)",
    re.IGNORECASE,
)

#: callees where a nondeterministic argument corrupts results
_RESULT_SINK_RE = re.compile(
    r"(pack|merge|plan|inject|batch|simulate)", re.IGNORECASE
)

#: order-sensitive builtins: materialize/enumerate their argument
_ORDER_SENSITIVE = frozenset(
    {"list", "tuple", "enumerate", "zip", "reversed", "dict", "join"}
)

_REDUCTIONS = frozenset(
    {"sum", "fsum", "mean", "nansum", "average", "prod", "cumsum"}
)

#: module-global RNG entry points on ``random`` / ``np.random``
_GLOBAL_RNG = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
        "getrandbits",
        "rand",
        "randn",
        "normal",
        "permutation",
    }
)

_UNORDERED = "unordered"
_WALLCLOCK = "wallclock"

#: var -> taint flags
_State = Dict[str, FrozenSet[str]]


def _callee_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_wallclock_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        base_name = (
            base.id
            if isinstance(base, ast.Name)
            else base.attr if isinstance(base, ast.Attribute) else None
        )
        return (
            func.attr in _WALLCLOCK_FUNCS
            and base_name in {"time", "datetime", "date"}
        )
    if isinstance(func, ast.Name):
        return func.id in _WALLCLOCK_FUNCS - {"time", "now", "today"}
    return False


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in {"set", "frozenset", "Set", "FrozenSet"}
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in {"Set", "FrozenSet"}
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return bool(
            re.match(r"\s*(set|frozenset|Set|FrozenSet)\b", annotation.value)
        )
    return False


def _class_unordered_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes annotated set-typed anywhere in the class body."""
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.AnnAssign):
            continue
        if not _is_set_annotation(node.annotation):
            continue
        target = node.target
        if isinstance(target, ast.Name):
            attrs.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            attrs.add(target.attr)
    return attrs


class _FunctionAnalysis:
    """Taint/unordered dataflow + sink checks over one function."""

    def __init__(
        self,
        path: str,
        function: FunctionNode,
        unordered_attrs: Set[str],
    ) -> None:
        self.path = path
        self.function = function
        self.unordered_attrs = unordered_attrs
        self.cfg = CFG.from_function(function)

    # -- inference -----------------------------------------------------
    def _flags(self, expr: ast.expr, state: _State) -> FrozenSet[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.unordered_attrs
            ):
                return frozenset({_UNORDERED})
            return frozenset()
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return frozenset({_UNORDERED})
        if isinstance(expr, ast.Call):
            name = _callee_name(expr)
            if name in {"set", "frozenset"}:
                return frozenset({_UNORDERED})
            if name == "sorted":
                return frozenset()  # canonicalized
            if _is_wallclock_call(expr):
                return frozenset({_WALLCLOCK})
            return frozenset()
        if isinstance(expr, ast.BinOp):
            return self._flags(expr.left, state) | self._flags(
                expr.right, state
            )
        if isinstance(expr, ast.IfExp):
            return self._flags(expr.body, state) | self._flags(
                expr.orelse, state
            )
        if isinstance(expr, (ast.NamedExpr,)):
            return self._flags(expr.value, state)
        return frozenset()

    # -- transfer ------------------------------------------------------
    def _transfer(self, node: Node, state: _State) -> _State:
        stmt = node.stmt
        if stmt is None:
            return state
        out = state

        def bind(name: str, flags: FrozenSet[str]) -> None:
            nonlocal out
            if flags or name in out:
                out = dict(out)
                if flags:
                    out[name] = flags
                else:
                    out.pop(name, None)

        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                bind(target.id, self._flags(stmt.value, state))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            flags = (
                self._flags(stmt.value, state)
                if stmt.value is not None
                else frozenset()
            )
            if _is_set_annotation(stmt.annotation):
                flags = flags | {_UNORDERED}
            bind(stmt.target.id, frozenset(flags))
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            merged = state.get(
                stmt.target.id, frozenset()
            ) | self._flags(stmt.value, state)
            bind(stmt.target.id, merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)) and isinstance(
            stmt.target, ast.Name
        ):
            bind(stmt.target.id, frozenset())  # elements are values
        return out

    @staticmethod
    def _join(a: _State, b: _State) -> _State:
        if a == b:
            return a
        out = dict(a)
        for var, flags in b.items():
            out[var] = out.get(var, frozenset()) | flags
        return out

    # -- sinks ---------------------------------------------------------
    def _evaluated(self, node: Node) -> List[ast.AST]:
        stmt = node.stmt
        if stmt is None:
            return []
        if isinstance(stmt, ast.If):
            return [stmt.test]
        if isinstance(stmt, ast.While):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.ExceptHandler):
            return []
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return []  # nested scopes are analyzed separately
        return [stmt]

    def _check_node(
        self, node: Node, state: _State, findings: List[Finding]
    ) -> None:
        stmt = node.stmt

        def unordered(expr: ast.expr) -> bool:
            return _UNORDERED in self._flags(expr, state)

        def clocked(expr: ast.expr) -> bool:
            if _WALLCLOCK in self._flags(expr, state):
                return True
            return any(
                isinstance(n, ast.Call) and _is_wallclock_call(n)
                for n in ast.walk(expr)
            )

        def emit(rule: str, line: int, message: str) -> None:
            findings.append(
                Finding(
                    rule=rule,
                    path=self.path,
                    line=line,
                    message=message,
                    analyzer="determinism",
                )
            )

        # direct iteration
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and unordered(
            stmt.iter
        ):
            what = (
                f"'{stmt.iter.id}'"
                if isinstance(stmt.iter, ast.Name)
                else "an unordered collection"
            )
            emit(
                "determinism-unordered-iter",
                stmt.lineno,
                f"iterating {what} (unordered): the visit order "
                "changes run to run — sort (or use an ordered "
                "container) before anything order-sensitive consumes "
                "it",
            )

        for tree in self._evaluated(node):
            # comprehensions drawing from unordered sources (set-to-set
            # comprehensions are order-insensitive and stay quiet)
            for comp in (
                n
                for n in ast.walk(tree)
                if isinstance(
                    n, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
                )
            ):
                for gen in comp.generators:
                    if unordered(gen.iter):
                        emit(
                            "determinism-unordered-iter",
                            comp.lineno,
                            "comprehension over an unordered "
                            "collection materializes a "
                            "nondeterministic order — sort the "
                            "source first",
                        )
            for call in (
                n for n in ast.walk(tree) if isinstance(n, ast.Call)
            ):
                name = _callee_name(call)
                if name is None:
                    continue
                first = call.args[0] if call.args else None
                if name in _REDUCTIONS:
                    if first is not None and unordered(first):
                        emit(
                            "determinism-float-reduction",
                            call.lineno,
                            f"{name}() over an unordered collection: "
                            "float accumulation is order-dependent, "
                            "so the reduction is not reproducible — "
                            "sort the operands first",
                        )
                elif name in _ORDER_SENSITIVE:
                    if any(unordered(arg) for arg in call.args):
                        emit(
                            "determinism-unordered-iter",
                            call.lineno,
                            f"{name}() materializes an unordered "
                            "collection in nondeterministic order — "
                            "wrap the source in sorted(...)",
                        )
                elif name == "hash" and isinstance(
                    call.func, ast.Name
                ):
                    emit(
                        "determinism-hash",
                        call.lineno,
                        "builtin hash() is seeded per process "
                        "(PYTHONHASHSEED): its value has no meaning "
                        "across runs or across worker processes",
                    )
                elif _RESULT_SINK_RE.search(name):
                    for arg in call.args:
                        if unordered(arg):
                            emit(
                                "determinism-unordered-iter",
                                call.lineno,
                                f"unordered collection passed into "
                                f"{name}(): result-path code must "
                                "see a canonical order",
                            )
                        elif clocked(arg):
                            emit(
                                "determinism-wallclock",
                                call.lineno,
                                f"wall-clock value passed into "
                                f"{name}(): timestamps belong in "
                                "metrics/deadline plumbing, never "
                                "on a result path",
                            )

        # wall-clock escaping to non-timing destinations
        if (
            isinstance(stmt, ast.Return)
            and stmt.value is not None
            and clocked(stmt.value)
            and not _TIMING_NAME_RE.search(self.function.name)
        ):
            emit(
                "determinism-wallclock",
                stmt.lineno,
                f"'{self.function.name}' returns a wall-clock "
                "value but is not named like a timing helper — "
                "results derived from it will differ run to run",
            )
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and not _TIMING_NAME_RE.search(target.attr)
                    and clocked(stmt.value)
                ):
                    emit(
                        "determinism-wallclock",
                        stmt.lineno,
                        f"wall-clock value stored into non-timing "
                        f"attribute '{target.attr}' — name it like "
                        "a timestamp or keep the clock out of it",
                    )

    def findings(self) -> List[Finding]:
        states = solve_forward(
            self.cfg,
            init={},
            transfer=self._transfer,
            join=self._join,
        )
        found: List[Finding] = []
        for node in self.cfg.nodes:
            state = states.get(node.index)
            if state is None:
                continue
            self._check_node(node, state, found)
        return found


def _rng_findings(path: str, tree: ast.AST) -> List[Finding]:
    """Whole-file scan: module-global / unseeded RNG construction."""
    findings: List[Finding] = []

    def emit(line: int, message: str) -> None:
        findings.append(
            Finding(
                rule="determinism-unseeded-rng",
                path=path,
                line=line,
                message=message,
                analyzer="determinism",
            )
        )

    for call in (n for n in ast.walk(tree) if isinstance(n, ast.Call)):
        func = call.func
        seeded = bool(call.args or call.keywords)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base, attr = func.value.id, func.attr
            if base == "random" and attr in _GLOBAL_RNG:
                emit(
                    call.lineno,
                    f"random.{attr}() uses the module-global RNG: "
                    "shared, unseeded state — construct a seeded "
                    "random.Random(seed) instead",
                )
            elif base == "random" and attr == "Random" and not seeded:
                emit(
                    call.lineno,
                    "random.Random() without a seed: results change "
                    "run to run — pass an explicit seed",
                )
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id in {"np", "numpy"}
                and inner.attr == "random"
            ):
                if func.attr == "default_rng" and not seeded:
                    emit(
                        call.lineno,
                        "np.random.default_rng() without a seed: "
                        "results change run to run — pass an "
                        "explicit seed",
                    )
                elif func.attr in _GLOBAL_RNG:
                    emit(
                        call.lineno,
                        f"np.random.{func.attr}() uses numpy's "
                        "global RNG state — use a seeded "
                        "np.random.default_rng(seed)",
                    )
        if (
            isinstance(func, ast.Name)
            and func.id in {"Random", "RandomState"}
            and not seeded
        ):
            emit(
                call.lineno,
                f"{func.id}() without a seed: results change run "
                "to run — pass an explicit seed",
            )
    return findings


def analyze_determinism(
    sources: Sequence[Tuple[str, str]]
) -> List[Finding]:
    """Run the determinism rules over ``(path, source)`` pairs."""
    findings: List[Finding] = []
    for path, text in sources:
        tree = ast.parse(text, filename=path)
        raw = _rng_findings(path, tree)
        unordered_by_class: Dict[Optional[ast.ClassDef], Set[str]] = {}
        for function, cls in function_defs(tree):
            if cls not in unordered_by_class:
                unordered_by_class[cls] = (
                    _class_unordered_attrs(cls) if cls else set()
                )
            raw.extend(
                _FunctionAnalysis(
                    path, function, unordered_by_class[cls]
                ).findings()
            )
        raw.sort(key=lambda f: (f.line, f.rule))
        findings.extend(
            apply_suppressions(raw, Suppressions.scan(text))
        )
    return findings


def analyze_determinism_paths(paths: Sequence[str]) -> List[Finding]:
    """Disk-path variant of :func:`analyze_determinism`."""
    return analyze_determinism(
        [
            (str(path), Path(path).read_text(encoding="utf-8"))
            for path in paths
        ]
    )
