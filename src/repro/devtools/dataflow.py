"""Intraprocedural CFG + fixpoint dataflow over Python ``ast``.

The shared analysis core behind :mod:`repro.devtools.determinism` and
:mod:`repro.devtools.lifecycle`: a statement-level control-flow graph
built from a function's AST, plus generic forward/backward fixpoint
solvers that clients drive with their own lattice (``init`` /
``transfer`` / ``join``).

CFG shape
---------
One :class:`Node` per simple statement or compound-statement *header*
(the ``if``/``while`` test, the ``for`` iterable, the ``with`` context
expressions, ...).  Three synthetic nodes frame the function: ``entry``,
``exit`` (normal return / fall-off-the-end), and ``raise_exit`` (an
exception leaves the function).  Edges carry a kind:

``"normal"``
    Ordinary fall-through / branch / loop-back control flow.
``"exception"``
    *Implicit* may-raise flow: a statement containing a call (or an
    ``assert``) may raise before or after its effect, so it gets an
    extra edge to the innermost handler / ``finally`` / ``raise_exit``.
    Solvers propagate the client's ``transfer_exc`` state (pre-state by
    default) along these edges.
``"raise"``
    *Explicit* ``raise`` statements, and the re-raise continuation of a
    ``finally`` block (a finally runs on both the normal and the
    exceptional path, so its exits connect to both continuations).

Path-condition-lite semantics
-----------------------------
The graph is deliberately conservative rather than path-sensitive:

* ``try``/``finally``: the finally body is built once; every way in
  (normal completion, handler completion, exception, ``return``) merges
  at its entry, and its exits connect to *both* the normal continuation
  and the enclosing exception target.  Extra merged paths may arise;
  must-style analyses stay sound, may-style clients accept the noise.
* ``except``: an exception inside ``try`` flows to every handler
  header.  When no handler is a catch-all (bare ``except``,
  ``BaseException``, ``Exception``), the unmatched exception
  additionally flows past the handlers to the enclosing target.
* ``return`` routes through enclosing ``finally`` blocks (so a release
  in a finally counts on the return path) before reaching ``exit``.
* ``break``/``continue`` jump straight to the loop exit/header —
  intervening finallys are not modeled on these two jumps.

Nested ``def``/``class``/``lambda`` bodies are opaque single statements
(clients analyze each function separately).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

#: Edge kinds (see module docstring).
NORMAL = "normal"
EXCEPTION = "exception"
RAISE = "raise"

#: Handlers catching these names swallow *any* exception for edge
#: purposes ("path-condition-lite": KeyboardInterrupt escaping an
#: ``except Exception`` is out of scope for a lint).
_CATCH_ALL_NAMES = frozenset({"BaseException", "Exception"})

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class Node:
    """One CFG node: a statement, a handler header, or a frame marker."""

    index: int
    #: The statement (or ``ast.ExceptHandler``) this node evaluates;
    #: ``None`` for the synthetic entry/exit/join nodes.
    stmt: Optional[ast.AST]
    #: ``"entry" | "exit" | "raise-exit" | "stmt" | "handler" | "join"``
    kind: str
    #: Outgoing ``(successor index, edge kind)`` edges.
    succ: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def line(self) -> Optional[int]:
        return getattr(self.stmt, "lineno", None)


class CFG:
    """Control-flow graph of one function (see module docstring)."""

    def __init__(
        self,
        nodes: List[Node],
        entry: int,
        exit: int,
        raise_exit: int,
        function: FunctionNode,
    ) -> None:
        self.nodes = nodes
        self.entry = entry
        self.exit = exit
        self.raise_exit = raise_exit
        self.function = function

    @classmethod
    def from_function(cls, function: FunctionNode) -> "CFG":
        return _Builder(function).build()

    def predecessors(self) -> Dict[int, List[Tuple[int, str]]]:
        """``node index -> [(predecessor index, edge kind)]``."""
        preds: Dict[int, List[Tuple[int, str]]] = {
            node.index: [] for node in self.nodes
        }
        for node in self.nodes:
            for succ, kind in node.succ:
                preds[succ].append((node.index, kind))
        return preds


def may_raise(stmt: ast.AST) -> bool:
    """Whether *stmt* gets an implicit ``"exception"`` edge.

    Deliberately narrower than Python's "almost anything can raise":
    only statements containing a call (or an ``assert``, which is a
    conditional raise) are treated as may-raise, which keeps exception
    edges — and the findings that ride on them — anchored to the
    operations that fail in practice.
    """
    if isinstance(stmt, (ast.Assert, ast.Raise)):
        return True
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False  # defining a function evaluates nothing risky

    class _Finder(ast.NodeVisitor):
        found = False

        def visit_Call(self, node: ast.Call) -> None:
            self.found = True

        def visit_Await(self, node: ast.Await) -> None:
            self.found = True

        # nested bodies are opaque: calls inside them do not raise here
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass

        def visit_AsyncFunctionDef(
            self, node: ast.AsyncFunctionDef
        ) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

    finder = _Finder()
    finder.visit(stmt)
    return finder.found


class _Builder:
    """Single-use CFG builder (recursive descent over statement lists)."""

    def __init__(self, function: FunctionNode) -> None:
        self.function = function
        self.nodes: List[Node] = []
        # stack of exception destinations: each frame is the list of
        # (node index, edge kind) an exception raised "here" flows to
        self.exc_frames: List[List[Tuple[int, str]]] = []
        # stack of finally entry nodes a return must route through
        self.finally_entries: List[int] = []
        # loop stack: (header index, list collecting break edges)
        self.loops: List[Tuple[int, List[Tuple[int, str]]]] = []

    # -- plumbing ------------------------------------------------------
    def _new(self, stmt: Optional[ast.AST], kind: str = "stmt") -> int:
        node = Node(index=len(self.nodes), stmt=stmt, kind=kind)
        self.nodes.append(node)
        return node.index

    def _connect(
        self, frontier: List[Tuple[int, str]], target: int
    ) -> None:
        for source, kind in frontier:
            self.nodes[source].succ.append((target, kind))

    def _exc_dests(self) -> List[Tuple[int, str]]:
        return self.exc_frames[-1]

    def _add_exception_edges(self, index: int, stmt: ast.AST) -> None:
        if may_raise(stmt):
            for target, _ in self._exc_dests():
                self.nodes[index].succ.append((target, EXCEPTION))

    # -- build ---------------------------------------------------------
    def build(self) -> CFG:
        entry = self._new(None, "entry")
        exit_ = self._new(None, "exit")
        raise_exit = self._new(None, "raise-exit")
        self.exit = exit_
        self.exc_frames.append([(raise_exit, EXCEPTION)])
        frontier = self._block(self.function.body, [(entry, NORMAL)])
        self._connect(frontier, exit_)
        self.exc_frames.pop()
        return CFG(self.nodes, entry, exit_, raise_exit, self.function)

    def _block(
        self,
        stmts: List[ast.stmt],
        frontier: List[Tuple[int, str]],
    ) -> List[Tuple[int, str]]:
        for stmt in stmts:
            frontier = self._statement(stmt, frontier)
        return frontier

    def _statement(
        self, stmt: ast.stmt, frontier: List[Tuple[int, str]]
    ) -> List[Tuple[int, str]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier)
        if isinstance(stmt, ast.Break):
            index = self._new(stmt)
            self._connect(frontier, index)
            self.loops[-1][1].append((index, NORMAL))
            return []
        if isinstance(stmt, ast.Continue):
            index = self._new(stmt)
            self._connect(frontier, index)
            self.nodes[index].succ.append((self.loops[-1][0], NORMAL))
            return []
        # simple statement (assignments, expressions, nested defs, ...)
        index = self._new(stmt)
        self._connect(frontier, index)
        self._add_exception_edges(index, stmt)
        return [(index, NORMAL)]

    def _if(
        self, stmt: ast.If, frontier: List[Tuple[int, str]]
    ) -> List[Tuple[int, str]]:
        header = self._new(stmt)
        self._connect(frontier, header)
        self._add_exception_edges(header, stmt.test)
        then = self._block(stmt.body, [(header, NORMAL)])
        if stmt.orelse:
            other = self._block(stmt.orelse, [(header, NORMAL)])
        else:
            other = [(header, NORMAL)]
        return then + other

    def _loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        frontier: List[Tuple[int, str]],
    ) -> List[Tuple[int, str]]:
        header = self._new(stmt)
        self._connect(frontier, header)
        raise_source = (
            stmt.test if isinstance(stmt, ast.While) else stmt.iter
        )
        self._add_exception_edges(header, raise_source)
        breaks: List[Tuple[int, str]] = []
        self.loops.append((header, breaks))
        body_exit = self._block(stmt.body, [(header, NORMAL)])
        self._connect(body_exit, header)
        self.loops.pop()
        after: List[Tuple[int, str]] = breaks
        # loop exit: condition false / iterator exhausted (a
        # ``while True`` with no break genuinely never falls through,
        # but modeling that would need constant folding — accept the
        # spurious fall-through edge)
        after = after + [(header, NORMAL)]
        if stmt.orelse:
            after = self._block(stmt.orelse, [(header, NORMAL)]) + breaks
        return after

    def _with(
        self,
        stmt: Union[ast.With, ast.AsyncWith],
        frontier: List[Tuple[int, str]],
    ) -> List[Tuple[int, str]]:
        header = self._new(stmt)
        self._connect(frontier, header)
        # entering a context manager evaluates calls
        for item in stmt.items:
            self._add_exception_edges(header, item.context_expr)
        return self._block(stmt.body, [(header, NORMAL)])

    def _try(
        self, stmt: ast.Try, frontier: List[Tuple[int, str]]
    ) -> List[Tuple[int, str]]:
        outer_dests = self._exc_dests()
        finally_entry: Optional[int] = None
        if stmt.finalbody:
            finally_entry = self._new(None, "join")
            self.finally_entries.append(finally_entry)

        # where do exceptions raised in the try body go?
        handler_headers: List[int] = []
        for handler in stmt.handlers:
            handler_headers.append(self._new(handler, "handler"))
        body_exc: List[Tuple[int, str]] = [
            (header, EXCEPTION) for header in handler_headers
        ]
        catch_all = any(
            handler.type is None
            or (
                isinstance(handler.type, ast.Name)
                and handler.type.id in _CATCH_ALL_NAMES
            )
            or (
                isinstance(handler.type, ast.Attribute)
                and handler.type.attr in _CATCH_ALL_NAMES
            )
            for handler in stmt.handlers
        )
        if not catch_all:
            # unmatched exceptions skip the handlers: through the
            # finally when there is one, else straight out
            if finally_entry is not None:
                body_exc.append((finally_entry, EXCEPTION))
            else:
                body_exc.extend(outer_dests)

        self.exc_frames.append(body_exc)
        body_exit = self._block(stmt.body, frontier)
        self.exc_frames.pop()

        if stmt.orelse:
            body_exit = self._block(stmt.orelse, body_exit)

        # handler bodies: exceptions raised inside them go through the
        # finally (if any) or to the enclosing destinations
        handler_dests: List[Tuple[int, str]]
        if finally_entry is not None:
            handler_dests = [(finally_entry, EXCEPTION)]
        else:
            handler_dests = outer_dests
        handler_exits: List[Tuple[int, str]] = []
        self.exc_frames.append(handler_dests)
        for header_index, handler in zip(handler_headers, stmt.handlers):
            handler_exits.extend(
                self._block(handler.body, [(header_index, NORMAL)])
            )
        self.exc_frames.pop()

        completed = body_exit + handler_exits
        if finally_entry is None:
            return completed
        self._connect(completed, finally_entry)
        self.finally_entries.pop()
        final_exit = self._block(
            stmt.finalbody, [(finally_entry, NORMAL)]
        )
        # dual continuation: the finally ran either on the normal path
        # (fall through) or with an exception in flight (re-raise to
        # the enclosing destinations)
        for target, _ in outer_dests:
            for source, _kind in final_exit:
                self.nodes[source].succ.append((target, RAISE))
        return final_exit

    def _return(
        self, stmt: ast.Return, frontier: List[Tuple[int, str]]
    ) -> List[Tuple[int, str]]:
        index = self._new(stmt)
        self._connect(frontier, index)
        self._add_exception_edges(index, stmt)
        if self.finally_entries:
            # route through the innermost finally; its normal exit also
            # reaches the code after the try (a spurious continuation
            # the path-condition-lite model accepts)
            self.nodes[index].succ.append(
                (self.finally_entries[-1], NORMAL)
            )
        else:
            self.nodes[index].succ.append((self.exit, NORMAL))
        return []

    def _raise(
        self, stmt: ast.Raise, frontier: List[Tuple[int, str]]
    ) -> List[Tuple[int, str]]:
        index = self._new(stmt)
        self._connect(frontier, index)
        for target, _ in self._exc_dests():
            self.nodes[index].succ.append((target, RAISE))
        return []


# ----------------------------------------------------------------------
# fixpoint solvers
# ----------------------------------------------------------------------

Transfer = Callable[[Node, Any], Any]
Join = Callable[[Any, Any], Any]

#: Iteration safety valve: a well-formed client lattice converges in
#: O(nodes * lattice height); a client whose join is not monotone would
#: otherwise spin forever inside the lint.
MAX_VISITS_PER_NODE = 256


def solve_forward(
    cfg: CFG,
    *,
    init: Any,
    transfer: Transfer,
    join: Join,
    transfer_exc: Optional[Transfer] = None,
) -> Dict[int, Any]:
    """Forward fixpoint: returns the state *entering* each node.

    ``transfer(node, state)`` produces the post-state propagated along
    ``"normal"`` and ``"raise"`` edges.  Along ``"exception"`` edges the
    statement may have raised before completing, so ``transfer_exc``
    decides what survives: by default the pre-state (the statement's
    effect is not assumed); returning ``None`` from a supplied
    ``transfer_exc`` suppresses propagation along that edge entirely
    (used by clients that only reason about explicit raises).

    States must support ``==`` (fixpoint detection); ``join`` must be
    monotone over a finite lattice for termination (a per-node visit cap
    guards against client bugs).
    """
    states: Dict[int, Any] = {cfg.entry: init}
    visits: Dict[int, int] = {}
    worklist = deque([cfg.entry])
    queued = {cfg.entry}
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > MAX_VISITS_PER_NODE:
            continue
        node = cfg.nodes[index]
        state = states[index]
        post = transfer(node, state)
        for succ, kind in node.succ:
            if kind == EXCEPTION:
                if transfer_exc is None:
                    out = state
                else:
                    out = transfer_exc(node, state)
                    if out is None:
                        continue
            else:
                out = post
            old = states.get(succ)
            merged = out if old is None else join(old, out)
            if old is None or merged != old:
                states[succ] = merged
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return states


def solve_backward(
    cfg: CFG,
    *,
    init: Any,
    transfer: Transfer,
    join: Join,
) -> Dict[int, Any]:
    """Backward fixpoint: returns the state *leaving* each node.

    The state flowing out of a node is ``transfer(node, join of the
    states entering its successors)``; both exit nodes seed with
    ``init``.  Edge kinds are not distinguished backwards — a backward
    client (liveness and friends) treats every path alike.
    """
    preds = cfg.predecessors()
    states: Dict[int, Any] = {cfg.exit: init, cfg.raise_exit: init}
    visits: Dict[int, int] = {}
    worklist = deque([cfg.exit, cfg.raise_exit])
    queued = set(worklist)
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        visits[index] = visits.get(index, 0) + 1
        if visits[index] > MAX_VISITS_PER_NODE:
            continue
        node = cfg.nodes[index]
        state = states[index]
        out = transfer(node, state)
        for pred, _kind in preds[index]:
            old = states.get(pred)
            merged = out if old is None else join(old, out)
            if old is None or merged != old:
                states[pred] = merged
                if pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)
    return states


def function_defs(tree: ast.AST) -> List[Tuple[FunctionNode, Optional[ast.ClassDef]]]:
    """Every function in *tree* with its enclosing class (or ``None``).

    Nested functions are included (each analyzed on its own); the
    enclosing class is the innermost one, for clients that resolve
    ``self`` attributes.
    """
    found: List[Tuple[FunctionNode, Optional[ast.ClassDef]]] = []

    def walk(node: ast.AST, cls: Optional[ast.ClassDef]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                found.append((child, cls))
                walk(child, cls)
            else:
                walk(child, cls)

    walk(tree, None)
    return found
