"""Finding model, suppression comments, and report rendering.

Every devtools analyzer (:mod:`repro.devtools.concurrency`,
:mod:`repro.devtools.hotpath`, the :mod:`repro.devtools.sanitize`
self-check) emits the same :class:`Finding` record, so ``repro lint``
can merge, filter, and render them uniformly — human text by default,
``--json`` for machines (the CI gate reads the exit code either way).

Suppressions
------------
A finding is silenced in the source it points at, never in a config
file, so every suppression is visible in review next to the code it
excuses::

    self._closed = True  # lint: unguarded-ok(latch flag, set once under close)

The general syntax is ``# lint: <family>-ok(reason)`` placed on the
offending line or the line directly above it.  *family* matches a rule
by prefix: ``unguarded-ok`` covers ``unguarded-write`` and
``unguarded-read``, ``alloc-ok`` covers every ``alloc-*`` hot-path
rule, ``lock-order-ok`` covers ``lock-order``.  The *reason* is
mandatory — an empty pair of parentheses turns into a
``bad-suppression`` finding of its own, which keeps the "every
suppression carries a written reason" invariant machine-checked.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

#: ``# lint: <family>-ok(reason)`` — the suppression comment.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*([a-z][a-z0-9-]*?)-ok\(([^)]*)\)"
)

#: ``# lint: hot`` — marks a function whose loops the hot-path
#: allocation rules apply to (see :mod:`repro.devtools.hotpath`).
HOT_MARK_RE = re.compile(r"#\s*lint:\s*hot\b")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to ``path:line``."""

    rule: str  # e.g. "unguarded-write", "lock-order", "alloc-call"
    path: str
    line: int
    message: str
    analyzer: str  # "concurrency" | "hotpath" | "sanitize"
    suppressed: bool = False
    reason: Optional[str] = None  # the suppression's written reason

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "analyzer": self.analyzer,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class Suppressions:
    """Suppression comments of one source file, by line number."""

    #: line -> [(rule family, reason)]
    by_line: dict = field(default_factory=dict)

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        by_line: dict[int, list[tuple[str, str]]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            for match in _SUPPRESS_RE.finditer(text):
                family, reason = match.group(1), match.group(2).strip()
                by_line.setdefault(lineno, []).append((family, reason))
        return cls(by_line)

    def match(self, rule: str, line: int) -> Optional[tuple[str, str]]:
        """The ``(family, reason)`` suppressing *rule* at *line*, if any.

        A suppression applies to its own line and to the line directly
        below it (comment-above-the-statement style).  A family matches
        a rule exactly or as a dash-separated prefix.
        """
        for candidate in (line, line - 1):
            for family, reason in self.by_line.get(candidate, ()):
                if rule == family or rule.startswith(family + "-"):
                    return family, reason
        return None

    def bad_suppression_findings(self, path: str, analyzer: str) -> list:
        """``bad-suppression`` findings for reason-less suppressions."""
        findings = []
        for lineno, entries in sorted(self.by_line.items()):
            for family, reason in entries:
                if not reason:
                    findings.append(
                        Finding(
                            rule="bad-suppression",
                            path=path,
                            line=lineno,
                            message=(
                                f"suppression '{family}-ok()' has no "
                                "written reason; every suppression "
                                "must say why the finding is safe"
                            ),
                            analyzer=analyzer,
                        )
                    )
        return findings


def apply_suppressions(
    findings: Sequence[Finding], suppressions: Suppressions
) -> list[Finding]:
    """Mark findings silenced by *suppressions* (same file assumed)."""
    out = []
    for finding in findings:
        matched = suppressions.match(finding.rule, finding.line)
        if matched is not None:
            out.append(
                replace(finding, suppressed=True, reason=matched[1])
            )
        else:
            out.append(finding)
    return out


def summarize(findings: Sequence[Finding]) -> dict:
    """Counts the lint gate and the renderers share."""
    unsuppressed = [f for f in findings if not f.suppressed]
    by_analyzer: dict[str, int] = {}
    for finding in unsuppressed:
        by_analyzer[finding.analyzer] = (
            by_analyzer.get(finding.analyzer, 0) + 1
        )
    return {
        "total": len(findings),
        "unsuppressed": len(unsuppressed),
        "suppressed": len(findings) - len(unsuppressed),
        "by_analyzer": by_analyzer,
    }


def render_text(
    findings: Sequence[Finding], *, show_suppressed: bool = False
) -> str:
    """Human-readable report, one ``path:line: rule: message`` per line."""
    lines = []
    for finding in findings:
        if finding.suppressed and not show_suppressed:
            continue
        mark = " [suppressed]" if finding.suppressed else ""
        lines.append(
            f"{finding.location}: {finding.rule}: "
            f"{finding.message}{mark}"
        )
        if finding.suppressed and finding.reason:
            lines.append(f"    reason: {finding.reason}")
    counts = summarize(findings)
    if counts["unsuppressed"]:
        lines.append(
            f"{counts['unsuppressed']} finding(s) "
            f"({counts['suppressed']} suppressed)"
        )
    else:
        lines.append(
            f"clean: 0 findings ({counts['suppressed']} suppressed)"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: findings plus the summary block."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "summary": summarize(findings),
        },
        indent=2,
        sort_keys=True,
    )


#: one-line rule descriptions for the SARIF rule metadata; rules not
#: listed fall back to the rule id itself
_RULE_DESCRIPTIONS = {
    "unguarded-write": "attribute written without its guarding lock",
    "unguarded-read": "attribute read without its guarding lock",
    "lock-order": "locks acquired in conflicting orders (deadlock risk)",
    "alloc-call": "allocating call inside a hot loop",
    "alloc-ufunc": "out-less ufunc allocates inside a hot loop",
    "alloc-comprehension": "comprehension allocates inside a hot loop",
    "alloc-builtin": "allocating builtin inside a hot loop",
    "bad-suppression": "suppression comment without a written reason",
    "determinism-unordered-iter": (
        "unordered collection consumed in an order-sensitive position"
    ),
    "determinism-unseeded-rng": "module-global or unseeded RNG use",
    "determinism-wallclock": "wall-clock value on a result path",
    "determinism-float-reduction": (
        "float reduction over an unordered collection"
    ),
    "determinism-hash": "builtin hash() is process-seeded",
    "lifecycle-stranded-future": (
        "future can leave scope unresolved on some path"
    ),
    "lifecycle-leak": (
        "resource can leave scope unreleased on some path"
    ),
    "sanitizer-self-check": "runtime lock sanitizer self-check failed",
}

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_uri(path: str) -> str:
    """Repo-relative forward-slash URI when possible (CI uploads from
    the repo root; absolute analyzer paths would break annotation)."""
    from pathlib import Path

    candidate = Path(path)
    try:
        candidate = candidate.resolve().relative_to(Path.cwd())
    except (ValueError, OSError):
        pass
    return candidate.as_posix()


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report (GitHub code-scanning upload format).

    Unsuppressed findings become ``warning``-level results; suppressed
    ones are carried with an ``inSource`` suppression object (so code
    scanning shows them as dismissed rather than dropping the record
    and its written reason).
    """
    rule_ids = sorted({finding.rule for finding in findings})
    rules = [
        {
            "id": rule_id,
            "name": rule_id.replace("-", " ").title().replace(" ", ""),
            "shortDescription": {
                "text": _RULE_DESCRIPTIONS.get(rule_id, rule_id)
            },
            "defaultConfiguration": {"level": "warning"},
        }
        for rule_id in rule_ids
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in findings:
        result: dict = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": finding.line},
                    }
                }
            ],
            "properties": {"analyzer": finding.analyzer},
        }
        if finding.suppressed:
            suppression: dict = {"kind": "inSource"}
            if finding.reason:
                suppression["justification"] = finding.reason
            result["suppressions"] = [suppression]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/wave-pipelining"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
