"""Runtime lock sanitizer: turns stress tests into race detectors.

``REPRO_SANITIZE=1`` (see ``tests/conftest.py``) swaps the
``threading`` module *as seen by the serving tier and the kernel
cache* for a shim whose ``Lock``/``RLock``/``Condition`` constructors
return instrumented wrappers.  Every acquisition records, per thread,
which locks were already held:

* acquiring B while holding A adds the order edge ``A -> B``, keyed by
  each lock's **creation site** (``file:line``), so every instance of a
  class contributes to one logical edge;
* an edge whose *reverse* was ever observed — in any thread, any test —
  is a lock-order inversion (rule ``lock-inversion``): two threads
  interleaving those paths can deadlock, even if this run did not;
* releasing a lock held longer than ``REPRO_SANITIZE_HOLD_S`` seconds
  (default ``10``, generous enough for a worker-process respawn under
  ``worker.lock``) is a stall (rule ``lock-hold``) — a wait inside a
  ``Condition`` releases the lock, so blocking in ``wait()`` never
  counts as holding.

The shim is installed **per target module** (``module.threading =
shim``), never by patching the global ``threading`` module: pytest,
``concurrent.futures`` and friends keep their real primitives, so the
sanitizer's blast radius is exactly the code under test.  Locks created
*before* :func:`install` (module-import-time locks like the kernels'
``_COMPILE_LOCK``) stay uninstrumented; everything constructed
afterwards — every server, pool, worker — is tracked.

Violations surface as the shared :class:`~repro.devtools.report.Finding`
records; the conftest autouse fixture fails the test that produced
them.  ``repro lint`` runs :func:`self_check` — a synthetic ABBA
inversion plus an over-threshold hold against a private registry — so a
silently broken sanitizer is itself a lint finding.
"""

from __future__ import annotations

import importlib
import os
import threading as _real_threading
import time
import traceback
from typing import Optional

from .report import Finding

#: Modules whose ``threading`` binding the shim replaces.
TARGET_MODULES = (
    "repro.serve.server",
    "repro.serve.metrics",
    "repro.serve.batcher",
    "repro.serve.shards",
    "repro.serve.loadgen",
    "repro.core.wavepipe.kernels",
)

#: Default seconds a lock may be held before ``lock-hold`` fires.
DEFAULT_HOLD_THRESHOLD_S = 10.0


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for instrumented locks."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "on", "true", "yes",
    )


def _hold_threshold() -> float:
    raw = os.environ.get("REPRO_SANITIZE_HOLD_S", "").strip()
    if not raw:
        return DEFAULT_HOLD_THRESHOLD_S
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_HOLD_THRESHOLD_S


def _creation_site() -> tuple[str, int]:
    """First stack frame outside this module — the lock's birthplace."""
    for frame in reversed(traceback.extract_stack(limit=12)):
        if not frame.filename.endswith("sanitize.py"):
            return frame.filename, frame.lineno or 0
    return "<unknown>", 0


def _brief_stack() -> str:
    frames = [
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno}"
        for frame in traceback.extract_stack(limit=8)
        if not frame.filename.endswith("sanitize.py")
    ]
    return " <- ".join(reversed(frames[-4:]))


class LockRegistry:
    """Order edges, per-thread held stacks, and recorded violations."""

    def __init__(self, hold_threshold_s: Optional[float] = None) -> None:
        self._meta = _real_threading.Lock()  # guards registry state
        self.hold_threshold_s = (
            _hold_threshold()
            if hold_threshold_s is None
            else hold_threshold_s
        )
        #: (site_a, site_b) -> (thread name, brief stack) of first sighting
        self.edges: dict = {}
        self._violations: list[Finding] = []
        self._reported: set = set()  # dedup keys
        self._held = _real_threading.local()

    # -- wrapper hooks ---------------------------------------------------
    def note_acquire(self, lock: "_SanitizedLock") -> None:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        thread = _real_threading.current_thread().name
        site = lock.site
        prior_sites = {entry[0] for entry in stack}
        stack.append((site, time.monotonic()))
        if site in prior_sites:
            return  # reentrant (RLock) — no self edges
        with self._meta:
            for prior in prior_sites:
                edge = (prior, site)
                if edge not in self.edges:
                    self.edges[edge] = (thread, _brief_stack())
                reverse = (site, prior)
                if reverse in self.edges:
                    key = ("inversion", frozenset(edge))
                    if key in self._reported:
                        continue
                    self._reported.add(key)
                    other_thread, other_stack = self.edges[reverse]
                    path, line = _site_parts(site)
                    self._violations.append(
                        Finding(
                            rule="lock-inversion",
                            path=path,
                            line=line,
                            message=(
                                f"lock {_site_label(site)} acquired "
                                f"while holding {_site_label(prior)} "
                                f"(thread {thread!r}, at "
                                f"{_brief_stack()}), but thread "
                                f"{other_thread!r} took them in the "
                                f"opposite order at {other_stack}; "
                                "the interleaving deadlocks"
                            ),
                            analyzer="sanitize",
                        )
                    )

    def note_release(self, lock: "_SanitizedLock") -> None:
        stack = getattr(self._held, "stack", None)
        if not stack:
            return
        site = lock.site
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == site:
                _, since = stack.pop(index)
                held_for = time.monotonic() - since
                if held_for > self.hold_threshold_s:
                    self._hold_violation(site, held_for)
                return

    def _hold_violation(self, site: tuple, held_for: float) -> None:
        with self._meta:
            key = ("hold", site)
            if key in self._reported:
                return
            self._reported.add(key)
            path, line = _site_parts(site)
            self._violations.append(
                Finding(
                    rule="lock-hold",
                    path=path,
                    line=line,
                    message=(
                        f"lock {_site_label(site)} held for "
                        f"{held_for:.2f}s (threshold "
                        f"{self.hold_threshold_s:.2f}s) by thread "
                        f"{_real_threading.current_thread().name!r} "
                        f"at {_brief_stack()}; long holds serialize "
                        "the serving tier and hide deadlocks"
                    ),
                    analyzer="sanitize",
                )
            )

    # -- reporting -------------------------------------------------------
    def findings(self) -> list[Finding]:
        with self._meta:
            return list(self._violations)

    def reset(self) -> None:
        """Forget violations and edges (held stacks are left alone)."""
        with self._meta:
            self.edges.clear()
            self._violations.clear()
            self._reported.clear()


def _site_parts(site: tuple) -> tuple[str, int]:
    return site[0], site[1]


def _site_label(site: tuple) -> str:
    return f"{site[0].rsplit('/', 1)[-1]}:{site[1]}"


class _SanitizedLock:
    """``threading.Lock`` wrapper reporting into a :class:`LockRegistry`.

    Deliberately *not* attribute-delegating: ``threading.Condition``
    must fall back to calling the wrapper's own ``acquire``/``release``
    (so waits release the tracked hold), not reach through to the inner
    lock's private helpers.
    """

    _factory = staticmethod(_real_threading.Lock)

    def __init__(
        self,
        registry: LockRegistry,
        site: Optional[tuple[str, int]] = None,
    ) -> None:
        self._inner = self._factory()
        self._registry = registry
        # explicit sites serve the self-check: its locks are all born
        # inside this very module, which _creation_site skips over
        self.site = site if site is not None else _creation_site()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._registry.note_acquire(self)
        return got

    def release(self) -> None:
        self._registry.note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} from {_site_label(self.site)} "
            f"wrapping {self._inner!r}>"
        )


class _SanitizedRLock(_SanitizedLock):
    _factory = staticmethod(_real_threading.RLock)

    def locked(self) -> bool:  # C RLock grew .locked() only in 3.12
        probe = getattr(self._inner, "locked", None)
        return bool(probe()) if probe is not None else False


class SanitizedCondition(_real_threading.Condition):
    """``Condition`` over a sanitized lock.

    With no *lock* argument a sanitized **non-reentrant** ``Lock`` is
    used (the stdlib defaults to ``RLock``; nothing in this codebase
    relies on reentrant condition locks, and the plain wrapper keeps
    ``wait()`` flowing through the tracked ``acquire``/``release``).
    """

    def __init__(
        self,
        registry: LockRegistry,
        lock: Optional[_SanitizedLock] = None,
    ) -> None:
        if lock is None:
            lock = _SanitizedLock(registry)
        # the wrapper quacks like a Lock (acquire/release/__enter__);
        # typeshed's Condition signature only admits the real types
        super().__init__(lock)  # type: ignore


class _ThreadingShim:
    """Stands in for the ``threading`` module inside target modules."""

    def __init__(self, registry: LockRegistry) -> None:
        self._registry = registry

    def Lock(self) -> _SanitizedLock:
        return _SanitizedLock(self._registry)

    def RLock(self) -> _SanitizedRLock:
        return _SanitizedRLock(self._registry)

    def Condition(
        self, lock: Optional[_SanitizedLock] = None
    ) -> SanitizedCondition:
        return SanitizedCondition(self._registry, lock)

    def __getattr__(self, name: str) -> object:
        return getattr(_real_threading, name)


#: (registry, {module name: saved threading binding}) while installed.
_ACTIVE: Optional[tuple] = None


def install(registry: Optional[LockRegistry] = None) -> LockRegistry:
    """Swap the target modules onto sanitized locks; idempotent."""
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE[0]
    registry = registry or LockRegistry()
    shim = _ThreadingShim(registry)
    saved = {}
    for name in TARGET_MODULES:
        module = importlib.import_module(name)
        saved[name] = module.threading
        setattr(module, "threading", shim)
    _ACTIVE = (registry, saved)
    return registry


def uninstall() -> None:
    """Restore the real ``threading`` bindings."""
    global _ACTIVE
    if _ACTIVE is None:
        return
    _, saved = _ACTIVE
    for name, binding in saved.items():
        setattr(importlib.import_module(name), "threading", binding)
    _ACTIVE = None


def active_registry() -> Optional[LockRegistry]:
    return _ACTIVE[0] if _ACTIVE is not None else None


def self_check() -> list[Finding]:
    """Prove the sanitizer machinery works; findings mean it is broken.

    Drives a synthetic ABBA inversion and an over-threshold hold
    through a *private* registry (nothing global is touched) and
    reports a ``sanitizer-broken`` finding for every detection the
    machinery missed — ``repro lint`` runs this so a silently dead
    sanitizer fails the lint gate.
    """
    registry = LockRegistry(hold_threshold_s=0.005)
    lock_a = _SanitizedLock(registry, site=("<self-check>", 1))
    lock_b = _SanitizedLock(registry, site=("<self-check>", 2))
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:  # reverse order: must be flagged
            pass
    with lock_a:
        time.sleep(0.02)  # must exceed the 5ms threshold
    rules = {finding.rule for finding in registry.findings()}
    findings = []
    here = __file__
    if "lock-inversion" not in rules:
        findings.append(
            Finding(
                rule="sanitizer-broken",
                path=here,
                line=0,
                message=(
                    "self-check ABBA acquisition was not reported as "
                    "a lock-inversion; the runtime sanitizer is not "
                    "detecting lock-order violations"
                ),
                analyzer="sanitize",
            )
        )
    if "lock-hold" not in rules:
        findings.append(
            Finding(
                rule="sanitizer-broken",
                path=here,
                line=0,
                message=(
                    "self-check over-threshold hold was not reported "
                    "as a lock-hold; the runtime sanitizer is not "
                    "tracking hold times"
                ),
                analyzer="sanitize",
            )
        )
    return findings
