"""Static concurrency lint: lock-guard inference + lock-order graph.

The serving tier (:mod:`repro.serve`) and the kernel compile cache
(:mod:`repro.core.wavepipe.kernels`) are real concurrent code:
``threading.Lock``/``Condition`` state mutated from submitter threads,
shard workers, and worker-respawn paths at once.  The chaos tests catch
races only probabilistically; this AST pass makes the locking
discipline *checkable*:

1. **Lock discovery.**  Per class, attributes assigned
   ``threading.Lock()`` / ``RLock()`` / ``Condition(...)`` in
   ``__init__`` (or as dataclass ``field(default_factory=...)``) are
   the class's locks; module-level ``NAME = threading.Lock()`` globals
   are module locks.  ``Condition(self._lock)`` is aliased to the lock
   it wraps, so ``with self._cond:`` and ``with self._lock:`` count as
   the same guard.

2. **Guard inference.**  Every method body is walked with the set of
   locks lexically held (``with self._lock:`` scopes).  An attribute
   whose mutations *sometimes* hold a lock and sometimes do not is
   reported per unguarded site (rule ``unguarded-write``); an attribute
   *consistently* write-guarded by a lock but read without it from a
   thread-entry-reachable method is reported as ``unguarded-read``.
   Attributes never written under any lock are assumed
   single-threaded-by-design and stay silent — the analyzer flags
   *inconsistency*, not style.

3. **Thread entries.**  Methods passed as ``threading.Thread(target=
   self.x)`` or ``executor.submit(self.x, ...)``, plus the public API
   (including dunders) of lock-holding classes, are thread entries;
   private helpers reachable from them (class-internal call closure)
   inherit the entry property.  Read findings are restricted to
   entry-reachable code so construction-time plumbing stays quiet.

4. **Lock-order graph.**  Acquiring lock B while holding lock A adds
   the edge ``A -> B`` — including *transitively* through calls the
   analyzer can resolve (``self.m()``, ``self.attr.m()`` with the
   attr's class inferred from its ``__init__`` constructor call, and
   module-level functions by name).  Cycles in the graph are potential
   deadlocks (rule ``lock-order``); re-acquiring a non-reentrant lock
   already held is reported the same way.

Known limits (by design, documented so suppressions stay honest):
guards held by *callers* are invisible (``RequestQueue`` is lock-free
by contract — the server serializes access — and holds no locks, so it
is skipped entirely); mutations through aliases (``worker.known[...]``)
are attributed to the alias's class only when the final attribute name
maps to exactly one analyzed class; dynamic dispatch through callbacks
(``on_restart=...``) is not traced.

Findings are suppressed in-source with
``# lint: unguarded-ok(reason)`` / ``# lint: lock-order-ok(reason)``
(see :mod:`repro.devtools.report`).
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .report import Finding, Suppressions, apply_suppressions

#: Methods that mutate the common containers in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert",
        "add", "discard", "remove", "pop", "popleft", "popitem",
        "clear", "update", "setdefault", "move_to_end", "sort",
        "reverse", "rotate",
    }
)

_LOCK_FACTORIES = {"Lock": "lock", "RLock": "rlock", "Condition": "cond"}

#: Methods whose writes never count (object construction is
#: single-threaded by definition).
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: (owner, attr) — owner is a class name or a module name.
LockKey = tuple[str, str]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _label(key: LockKey) -> str:
    return f"{key[0]}.{key[1]}"


@dataclass
class _Event:
    """One attribute access / lock acquisition / call, with held locks."""

    name: str  # attribute, lock label, or callee description
    line: int
    held: frozenset
    method: str


@dataclass
class _MethodModel:
    name: str
    line: int
    writes: list = field(default_factory=list)  # _Event (attr)
    reads: list = field(default_factory=list)  # _Event (attr)
    acquisitions: list = field(default_factory=list)  # (key, line, held)
    calls: list = field(default_factory=list)  # (ref, line, held)
    global_writes: list = field(default_factory=list)  # _Event (global)


@dataclass
class _ClassModel:
    name: str
    module: str
    path: str
    line: int
    locks: dict = field(default_factory=dict)  # attr -> (kind, canonical)
    attr_types: dict = field(default_factory=dict)  # attr -> class name
    methods: dict = field(default_factory=dict)  # name -> _MethodModel
    thread_entries: set = field(default_factory=set)

    def canonical(self, attr: str) -> str:
        return self.locks[attr][1]

    def lock_kind(self, key: LockKey) -> Optional[str]:
        for attr, (kind, canonical) in self.locks.items():
            if canonical == key[1] and attr == canonical:
                return kind
        kinds = [
            kind
            for attr, (kind, canonical) in self.locks.items()
            if canonical == key[1]
        ]
        return kinds[0] if kinds else None


@dataclass
class _ModuleModel:
    name: str
    path: str
    classes: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)  # name -> _MethodModel
    locks: dict = field(default_factory=dict)  # global name -> kind
    globals: set = field(default_factory=set)  # module-level names


@dataclass
class ConcurrencyModel:
    """The inferred locking model of one analysis run (introspectable)."""

    modules: dict = field(default_factory=dict)  # name -> _ModuleModel
    #: attr guard map: (class, attr) -> LockKey, consistent guards only
    guards: dict = field(default_factory=dict)
    #: lock-order edges: (from key, to key) -> (path, line, method)
    edges: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)

    def describe(self) -> str:
        """Human summary: locks, guards, entries, and the order graph."""
        lines = []
        for module in self.modules.values():
            for cls in module.classes.values():
                if not cls.locks:
                    continue
                locks = ", ".join(
                    f"self.{attr}"
                    + (f" (aliases self.{canon})" if canon != attr else "")
                    for attr, (_, canon) in sorted(cls.locks.items())
                )
                lines.append(f"{cls.name}: locks {locks}")
                entries = sorted(cls.thread_entries)
                if entries:
                    lines.append(
                        f"  thread entries: {', '.join(entries)}"
                    )
                for (owner, attr), key in sorted(self.guards.items()):
                    if owner == cls.name:
                        lines.append(
                            f"  self.{attr} guarded by {_label(key)}"
                        )
        if self.edges:
            lines.append("lock-order edges:")
            for (src, dst), (path, line, _) in sorted(self.edges.items()):
                lines.append(
                    f"  {_label(src)} -> {_label(dst)}  ({path}:{line})"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# pass A: locks, attribute types, module globals
# ----------------------------------------------------------------------
def _factory_kind(node: ast.AST) -> Optional[str]:
    """``threading.Lock`` / ``Lock`` -> kind, else ``None``."""
    if isinstance(node, ast.Attribute):
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "threading"
        ):
            return _LOCK_FACTORIES.get(node.attr)
        return None
    if isinstance(node, ast.Name):
        return _LOCK_FACTORIES.get(node.id)
    return None


def _lock_call_kind(node: ast.AST) -> Optional[tuple[str, ast.Call]]:
    """``threading.Lock()``-style call -> (kind, call node)."""
    if not isinstance(node, ast.Call):
        return None
    kind = _factory_kind(node.func)
    return (kind, node) if kind else None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _scan_class_locks(cls_node: ast.ClassDef, model: _ClassModel) -> None:
    """Find the class's lock attributes and self-attr constructor types."""
    raw: dict[str, tuple[str, ast.Call]] = {}
    for stmt in cls_node.body:
        # dataclass fields: lock: ... = field(default_factory=<factory>)
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            value = stmt.value
            if isinstance(value, ast.Call) and (
                (isinstance(value.func, ast.Name)
                 and value.func.id == "field")
                or (isinstance(value.func, ast.Attribute)
                    and value.func.attr == "field")
            ):
                for keyword in value.keywords:
                    if keyword.arg != "default_factory":
                        continue
                    factory = keyword.value
                    kind = _factory_kind(factory)
                    if kind is None and isinstance(factory, ast.Lambda):
                        inner = _lock_call_kind(factory.body)
                        kind = inner[0] if inner else None
                    if kind:
                        model.locks[stmt.target.id] = (
                            kind, stmt.target.id
                        )
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) or stmt.name not in _INIT_METHODS:
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                lock = _lock_call_kind(node.value)
                if lock is not None:
                    raw[attr] = lock
                elif isinstance(node.value, ast.Call) and isinstance(
                    node.value.func, ast.Name
                ):
                    # self.X = ClassName(...): remember for call
                    # resolution (self.X.m() -> ClassName.m)
                    model.attr_types[attr] = node.value.func.id
    # canonicalize Condition(self._lock) onto the wrapped lock
    for attr, (kind, call) in raw.items():
        canonical = attr
        if kind == "cond" and call.args:
            wrapped = _self_attr(call.args[0])
            if wrapped is not None and wrapped in raw:
                canonical = wrapped
        model.locks[attr] = (kind, canonical)


def _scan_module_level(
    tree: ast.Module, model: _ModuleModel
) -> None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    model.globals.add(target.id)
                    lock = _lock_call_kind(stmt.value)
                    if lock is not None:
                        model.locks[target.id] = lock[0]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            model.globals.add(stmt.target.id)
            if stmt.value is not None:
                lock = _lock_call_kind(stmt.value)
                if lock is not None:
                    model.locks[stmt.target.id] = lock[0]


# ----------------------------------------------------------------------
# pass B: walk function bodies with the lexically-held lock set
# ----------------------------------------------------------------------
class _FunctionWalker:
    """Collects events of one function/method body."""

    def __init__(
        self,
        module: _ModuleModel,
        cls: Optional[_ClassModel],
        method: _MethodModel,
        all_classes: dict,
    ) -> None:
        self.module = module
        self.cls = cls
        self.method = method
        self.all_classes = all_classes
        self.global_decls: set[str] = set()

    # -- guard resolution ------------------------------------------------
    def resolve_guard(self, expr: ast.AST) -> Optional[LockKey]:
        attr = _self_attr(expr)
        if attr is not None:
            if self.cls is not None and attr in self.cls.locks:
                return (self.cls.name, self.cls.canonical(attr))
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module.locks:
                return (self.module.name, expr.id)
            return None
        if isinstance(expr, ast.Attribute):
            # x.lock / self.x.lock: unique final-attr match across the
            # analyzed classes' lock attributes
            owners = [
                cls
                for cls in self.all_classes.values()
                if expr.attr in cls.locks
            ]
            if len(owners) == 1:
                return (owners[0].name, owners[0].canonical(expr.attr))
        return None

    # -- statement walk --------------------------------------------------
    def walk(self, body: Sequence[ast.stmt], held: frozenset) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: frozenset) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in stmt.items:
                self._expr(item.context_expr, frozenset(inner))
                key = self.resolve_guard(item.context_expr)
                if key is not None:
                    self.method.acquisitions.append(
                        (key, item.context_expr.lineno, frozenset(inner))
                    )
                    inner.add(key)
            self.walk(stmt.body, frozenset(inner))
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # nested definitions execute later, in an unknown lock
            # context: walk them with nothing held (conservative for
            # guard inference, silent for the order graph)
            self.walk(stmt.body, frozenset())
        elif isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            for target in stmt.targets:
                self._store(target, held)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held)
            self._store(stmt.target, held)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held)
            self._store(stmt.target, held)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._store(target, held)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held)
            self._store(stmt.target, held)
            self.walk(stmt.body, held)
            self.walk(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body, held)
            for handler in stmt.handlers:
                self.walk(handler.body, held)
            self.walk(stmt.orelse, held)
            self.walk(stmt.finalbody, held)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, held)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, held)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc, held)
            if stmt.cause is not None:
                self._expr(stmt.cause, held)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test, held)
            if stmt.msg is not None:
                self._expr(stmt.msg, held)
        elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            self._expr(stmt.subject, held)
            for case in stmt.cases:
                self.walk(case.body, held)
        # Pass / Break / Continue / Import / Nonlocal: nothing to do

    # -- store targets ---------------------------------------------------
    def _store(self, target: ast.AST, held: frozenset) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, held)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value, held)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._write(attr, target.lineno, held)
            return
        if isinstance(target, ast.Subscript):
            self._expr(target.slice, held)
            base = target.value
            attr = _self_attr(base)
            if attr is not None:
                self._write(attr, target.lineno, held)
            elif (
                isinstance(base, ast.Name)
                and base.id in self.module.globals
            ):
                self._global_write(base.id, target.lineno, held)
            else:
                self._expr(base, held)
        elif isinstance(target, ast.Name):
            if (
                target.id in self.global_decls
                and target.id in self.module.globals
            ):
                self._global_write(target.id, target.lineno, held)
        elif isinstance(target, ast.Attribute):
            # obj.attr = ... on a non-self object: record the value
            # reads; the mutation itself is outside this class's state
            self._expr(target.value, held)

    def _write(self, attr: str, line: int, held: frozenset) -> None:
        self.method.writes.append(
            _Event(attr, line, held, self.method.name)
        )

    def _global_write(
        self, name: str, line: int, held: frozenset
    ) -> None:
        self.method.global_writes.append(
            _Event(name, line, held, self.method.name)
        )

    # -- expressions -----------------------------------------------------
    def _expr(self, expr: ast.AST, held: frozenset) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(node, held)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                attr = _self_attr(node)
                if attr is not None:
                    self.method.reads.append(
                        _Event(attr, node.lineno, held, self.method.name)
                    )

    def _call(self, call: ast.Call, held: frozenset) -> None:
        func = call.func
        # thread-entry discovery: Thread(target=self.m) / submit(self.m)
        if self.cls is not None:
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "Thread"
            ) or (isinstance(func, ast.Name) and func.id == "Thread"):
                for keyword in call.keywords:
                    if keyword.arg == "target":
                        target = _self_attr(keyword.value)
                        if target is not None:
                            self.cls.thread_entries.add(target)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "submit"
                and call.args
            ):
                target = _self_attr(call.args[0])
                if target is not None:
                    self.cls.thread_entries.add(target)
        # in-place mutator methods on self attrs / module globals
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
        ):
            attr = _self_attr(func.value)
            if attr is not None:
                self._write(attr, call.lineno, held)
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id in self.module.globals
            ):
                self._global_write(func.value.id, call.lineno, held)
        # call sites for transitive lock propagation
        ref = None
        if isinstance(func, ast.Name):
            ref = ("func", func.id)
        elif isinstance(func, ast.Attribute):
            base_attr = _self_attr(func.value)
            if isinstance(func.value, ast.Name) and (
                func.value.id == "self"
            ):
                ref = ("method", func.attr)
            elif base_attr is not None:
                ref = ("attrmethod", base_attr, func.attr)
        if ref is not None:
            self.method.calls.append((ref, call.lineno, held))


# ----------------------------------------------------------------------
# analysis driver
# ----------------------------------------------------------------------
def _parse_sources(
    sources: Sequence[tuple[str, str]],
) -> dict:
    modules: dict[str, _ModuleModel] = {}
    for path, text in sources:
        name = Path(path).stem
        tree = ast.parse(text, filename=path)
        module = _ModuleModel(name=name, path=path)
        _scan_module_level(tree, module)
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                cls = _ClassModel(
                    name=stmt.name,
                    module=name,
                    path=path,
                    line=stmt.lineno,
                )
                _scan_class_locks(stmt, cls)
                module.classes[stmt.name] = cls
        modules[name] = module
        module._tree = tree  # type: ignore[attr-defined]
    return modules


def _collect_events(modules: dict) -> dict:
    all_classes = {
        cls.name: cls
        for module in modules.values()
        for cls in module.classes.values()
    }
    for module in modules.values():
        tree = module._tree  # type: ignore[attr-defined]
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = _MethodModel(stmt.name, stmt.lineno)
                walker = _FunctionWalker(
                    module, None, method, all_classes
                )
                walker.walk(stmt.body, frozenset())
                module.functions[stmt.name] = method
            elif isinstance(stmt, ast.ClassDef):
                cls = module.classes[stmt.name]
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        method = _MethodModel(sub.name, sub.lineno)
                        walker = _FunctionWalker(
                            module, cls, method, all_classes
                        )
                        walker.walk(sub.body, frozenset())
                        cls.methods[sub.name] = method
    return all_classes


def _resolve_callee(
    ref: tuple,
    module: _ModuleModel,
    cls: Optional[_ClassModel],
    modules: dict,
    all_classes: dict,
) -> Optional[tuple]:
    """A call ref -> the (owner kind, model) of the callee, if known."""
    if ref[0] == "method" and cls is not None:
        target = cls.methods.get(ref[1])
        if target is not None:
            return ("cls", cls, target)
        return None
    if ref[0] == "attrmethod" and cls is not None:
        type_name = cls.attr_types.get(ref[1])
        target_cls = all_classes.get(type_name) if type_name else None
        if target_cls is not None:
            target = target_cls.methods.get(ref[2])
            if target is not None:
                return ("cls", target_cls, target)
        return None
    if ref[0] == "func":
        target = module.functions.get(ref[1])
        if target is not None:
            return ("mod", module, target)
        owners = [
            other
            for other in modules.values()
            if ref[1] in other.functions
        ]
        if len(owners) == 1:
            return ("mod", owners[0], owners[0].functions[ref[1]])
    return None


def _transitive_locks(modules: dict, all_classes: dict) -> dict:
    """Fixpoint: method -> every lock key it may acquire (deep)."""
    acquires: dict[int, set] = {}
    contexts = []  # (module, cls-or-None, method)
    for module in modules.values():
        for function in module.functions.values():
            contexts.append((module, None, function))
        for cls in module.classes.values():
            for method in cls.methods.values():
                contexts.append((module, cls, method))
    for _, _, method in contexts:
        acquires[id(method)] = {
            key for key, _, _ in method.acquisitions
        }
    changed = True
    while changed:
        changed = False
        for module, cls, method in contexts:
            current = acquires[id(method)]
            for ref, _, _ in method.calls:
                resolved = _resolve_callee(
                    ref, module, cls, modules, all_classes
                )
                if resolved is None:
                    continue
                extra = acquires[id(resolved[2])] - current
                if extra:
                    current |= extra
                    changed = True
    return acquires


def _entry_reachable(cls: _ClassModel) -> set:
    """Methods reachable from the class's thread entries."""
    entries = set(cls.thread_entries)
    for name in cls.methods:
        if not name.startswith("_"):
            entries.add(name)
        elif name.startswith("__") and name.endswith("__"):
            if name not in _INIT_METHODS and name != "__del__":
                entries.add(name)
    reachable = set(entries)
    frontier = list(entries)
    while frontier:
        current = cls.methods.get(frontier.pop())
        if current is None:
            continue
        for ref, _, _ in current.calls:
            if ref[0] == "method" and ref[1] not in reachable:
                if ref[1] in cls.methods:
                    reachable.add(ref[1])
                    frontier.append(ref[1])
    return reachable


def _guard_findings(
    owner_label: str,
    path: str,
    writes_by_attr: dict,
    reads_by_attr: dict,
    entry_methods: Optional[set],
    guards_out: dict,
    findings: list,
    lock_names: Iterable[str] = (),
) -> None:
    """The unguarded-write / unguarded-read rules for one scope."""
    for attr, writes in sorted(writes_by_attr.items()):
        if attr in lock_names:
            continue
        cover: Counter = Counter()
        for event in writes:
            for key in event.held:
                cover[key] += 1
        if not cover:
            continue  # never guarded: single-threaded by design
        guard, guarded_count = cover.most_common(1)[0]
        if guarded_count == len(writes):
            guards_out[(owner_label, attr)] = guard
            # consistent writes: check entry-reachable naked reads
            for event in reads_by_attr.get(attr, ()):
                if guard in event.held:
                    continue
                if (
                    entry_methods is not None
                    and event.method not in entry_methods
                ):
                    continue
                if event.method in _INIT_METHODS:
                    continue
                findings.append(
                    Finding(
                        rule="unguarded-read",
                        path=path,
                        line=event.line,
                        message=(
                            f"{owner_label}.{attr} is consistently "
                            f"written under {_label(guard)} but read "
                            f"here (in thread-entry-reachable "
                            f"'{event.method}') without it; the read "
                            "may observe a torn or stale update"
                        ),
                        analyzer="concurrency",
                    )
                )
            continue
        for event in writes:
            if guard in event.held:
                continue
            findings.append(
                Finding(
                    rule="unguarded-write",
                    path=path,
                    line=event.line,
                    message=(
                        f"{owner_label}.{attr} is written under "
                        f"{_label(guard)} at {guarded_count} other "
                        f"site(s) but mutated here (in "
                        f"'{event.method}') without it"
                    ),
                    analyzer="concurrency",
                )
            )


def _order_graph(
    modules: dict, all_classes: dict, acquires: dict, model: ConcurrencyModel
) -> list:
    """Build lock-order edges and report cycles / re-acquisitions."""
    findings: list[Finding] = []
    contexts = []
    for module in modules.values():
        for function in module.functions.values():
            contexts.append((module, None, function))
        for cls in module.classes.values():
            for method in cls.methods.values():
                contexts.append((module, cls, method))
    for module, cls, method in contexts:
        for key, line, held in method.acquisitions:
            for prior in held:
                if prior == key:
                    kind = None
                    owner_cls = all_classes.get(key[0])
                    if owner_cls is not None:
                        kind = owner_cls.lock_kind(key)
                    else:
                        owner_mod = modules.get(key[0])
                        if owner_mod is not None:
                            kind = owner_mod.locks.get(key[1])
                    if kind != "rlock":
                        findings.append(
                            Finding(
                                rule="lock-order",
                                path=module.path,
                                line=line,
                                message=(
                                    f"non-reentrant {_label(key)} is "
                                    "re-acquired while already held: "
                                    "guaranteed self-deadlock"
                                ),
                                analyzer="concurrency",
                            )
                        )
                    continue
                model.edges.setdefault(
                    (prior, key), (module.path, line, method.name)
                )
        for ref, line, held in method.calls:
            if not held:
                continue
            resolved = _resolve_callee(
                ref, module, cls, modules, all_classes
            )
            if resolved is None:
                continue
            for target in acquires[id(resolved[2])]:
                for prior in held:
                    if prior == target:
                        continue
                    model.edges.setdefault(
                        (prior, target),
                        (module.path, line, method.name),
                    )
    # cycle detection (iterative DFS, no external deps)
    graph: dict[LockKey, list[LockKey]] = {}
    for src, dst in model.edges:
        graph.setdefault(src, []).append(dst)
    state: dict[LockKey, int] = {}  # 0 visiting, 1 done
    reported: set[frozenset] = set()

    def visit(node: LockKey, stack: list) -> None:
        state[node] = 0
        stack.append(node)
        for succ in graph.get(node, ()):
            if succ not in state:
                visit(succ, stack)
            elif state[succ] == 0:
                cycle = stack[stack.index(succ):] + [succ]
                identity = frozenset(cycle)
                if identity not in reported:
                    reported.add(identity)
                    closing = model.edges[(node, succ)]
                    chain = " -> ".join(_label(key) for key in cycle)
                    findings.append(
                        Finding(
                            rule="lock-order",
                            path=closing[0],
                            line=closing[1],
                            message=(
                                f"lock-acquisition-order cycle "
                                f"{chain}: two threads taking these "
                                "locks in opposite orders can "
                                "deadlock"
                            ),
                            analyzer="concurrency",
                        )
                    )
        stack.pop()
        state[node] = 1

    for node in list(graph):
        if node not in state:
            visit(node, [])
    return findings


def build_model(
    sources: Sequence[tuple[str, str]],
) -> ConcurrencyModel:
    """Run the full analysis; returns the introspectable model."""
    modules = _parse_sources(sources)
    all_classes = _collect_events(modules)
    acquires = _transitive_locks(modules, all_classes)
    model = ConcurrencyModel(modules=modules)
    findings: list[Finding] = []
    for module in modules.values():
        # module-global guard inference (writes only: module globals
        # have too many legitimate single-threaded readers to make a
        # read rule precise)
        writes_by_name: dict[str, list] = {}
        for scope in list(module.functions.values()) + [
            method
            for cls in module.classes.values()
            for method in cls.methods.values()
        ]:
            for event in scope.global_writes:
                writes_by_name.setdefault(event.name, []).append(event)
        _guard_findings(
            module.name,
            module.path,
            writes_by_name,
            {},
            None,
            model.guards,
            findings,
            lock_names=module.locks,
        )
        for cls in module.classes.values():
            if not cls.locks:
                continue  # lock-free classes are guarded by callers
            writes_by_attr: dict[str, list] = {}
            reads_by_attr: dict[str, list] = {}
            for name, method in cls.methods.items():
                if name in _INIT_METHODS:
                    continue
                for event in method.writes:
                    writes_by_attr.setdefault(event.name, []).append(
                        event
                    )
                for event in method.reads:
                    reads_by_attr.setdefault(event.name, []).append(
                        event
                    )
            _guard_findings(
                cls.name,
                cls.path,
                writes_by_attr,
                reads_by_attr,
                _entry_reachable(cls),
                model.guards,
                findings,
                lock_names=cls.locks,
            )
    findings.extend(_order_graph(modules, all_classes, acquires, model))
    model.findings = findings
    return model


def analyze_concurrency(
    sources: Sequence[tuple[str, str]],
) -> list[Finding]:
    """Concurrency findings over *sources*, suppressions applied."""
    model = build_model(sources)
    by_path = {path: text for path, text in sources}
    findings: list[Finding] = []
    for path, text in by_path.items():
        suppressions = Suppressions.scan(text)
        own = [f for f in model.findings if f.path == path]
        findings.extend(apply_suppressions(own, suppressions))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def analyze_concurrency_paths(
    paths: Sequence[Union[str, Path]],
) -> list[Finding]:
    """:func:`analyze_concurrency` over files on disk."""
    sources = [
        (str(path), Path(path).read_text(encoding="utf-8"))
        for path in paths
    ]
    return analyze_concurrency(sources)
