"""Static analysis & sanitizers for the concurrent parts of the repo.

Five coordinated analyzers, surfaced as ``repro lint`` (CI-gated):

:mod:`repro.devtools.concurrency`
    AST lock-guard inference + lock-order graph over the serving tier
    and the kernel compile cache (rules ``unguarded-write``,
    ``unguarded-read``, ``lock-order``).
:mod:`repro.devtools.hotpath`
    Zero-allocation check of the ``# lint: hot`` kernel step loops
    (rules ``alloc-call``, ``alloc-ufunc``, ``alloc-comprehension``,
    ``alloc-builtin``).
:mod:`repro.devtools.determinism`
    Bit-identity guard over ``core/wavepipe`` + ``serve``: unordered
    iteration feeding result paths, unseeded RNG, wall-clock taint,
    order-dependent float reductions, process-seeded ``hash()``
    (rules ``determinism-*``).
:mod:`repro.devtools.lifecycle`
    CFG/dataflow must-release check: every future resolved and every
    acquired resource released (or escaped to an owner) on all paths,
    exception edges included (rules ``lifecycle-stranded-future``,
    ``lifecycle-leak``).
:mod:`repro.devtools.sanitize`
    Runtime lock sanitizer (``REPRO_SANITIZE=1``); ``repro lint`` runs
    its :func:`~repro.devtools.sanitize.self_check` so broken detection
    machinery is itself a finding.

The determinism and lifecycle families share the intraprocedural CFG +
fixpoint engine in :mod:`repro.devtools.dataflow`.

:func:`run_lint` is the one entry point the CLI and the self-check
tests share.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from .concurrency import analyze_concurrency, build_model
from .determinism import analyze_determinism
from .hotpath import analyze_hotpath
from .lifecycle import analyze_lifecycle
from .report import (
    Finding,
    Suppressions,
    render_json,
    render_sarif,
    render_text,
    summarize,
)
from .sanitize import self_check

__all__ = [
    "Finding",
    "analyze_concurrency",
    "analyze_determinism",
    "analyze_hotpath",
    "analyze_lifecycle",
    "build_model",
    "default_lint_paths",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "self_check",
    "summarize",
]

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def default_lint_paths() -> list[Path]:
    """The surface the lint gate covers by default.

    All of ``repro.serve`` (the concurrent/lifecycle-heavy tier) and
    all of ``repro.core.wavepipe`` (the bit-identity-critical engine);
    each analyzer engages only where its preconditions hold, so the
    broad surface costs nothing where a family has nothing to say.
    """
    serve = sorted((_PACKAGE_ROOT / "serve").glob("*.py"))
    wavepipe = sorted(
        (_PACKAGE_ROOT / "core" / "wavepipe").glob("*.py")
    )
    return [
        path
        for path in serve + wavepipe
        if path.name != "__init__.py"
    ]


def run_lint(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    *,
    sanitizer_check: bool = True,
) -> list[Finding]:
    """Run every analyzer; returns merged findings (suppressed marked).

    Both AST analyzers see every file: the hot-path rules only engage
    on ``# lint: hot`` functions, so running them repo-wide costs
    nothing and means a hot marker added anywhere is honored.  Reason-
    less suppression comments are reported once per file from here (not
    per analyzer, which would double-count shared files).
    """
    targets = [Path(path) for path in (paths or default_lint_paths())]
    sources = [
        (str(path), path.read_text(encoding="utf-8")) for path in targets
    ]
    findings = list(analyze_concurrency(sources))
    findings.extend(analyze_hotpath(sources))
    findings.extend(analyze_determinism(sources))
    findings.extend(analyze_lifecycle(sources))
    for path, text in sources:
        findings.extend(
            Suppressions.scan(text).bad_suppression_findings(
                path, "report"
            )
        )
    if sanitizer_check:
        findings.extend(self_check())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
