"""Static analysis & sanitizers for the concurrent parts of the repo.

Three coordinated analyzers, surfaced as ``repro lint`` (CI-gated):

:mod:`repro.devtools.concurrency`
    AST lock-guard inference + lock-order graph over the serving tier
    and the kernel compile cache (rules ``unguarded-write``,
    ``unguarded-read``, ``lock-order``).
:mod:`repro.devtools.hotpath`
    Zero-allocation check of the ``# lint: hot`` kernel step loops
    (rules ``alloc-call``, ``alloc-ufunc``, ``alloc-comprehension``,
    ``alloc-builtin``).
:mod:`repro.devtools.sanitize`
    Runtime lock sanitizer (``REPRO_SANITIZE=1``); ``repro lint`` runs
    its :func:`~repro.devtools.sanitize.self_check` so broken detection
    machinery is itself a finding.

:func:`run_lint` is the one entry point the CLI and the self-check
tests share.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from .concurrency import analyze_concurrency, build_model
from .hotpath import analyze_hotpath
from .report import (
    Finding,
    Suppressions,
    render_json,
    render_text,
    summarize,
)
from .sanitize import self_check

__all__ = [
    "Finding",
    "analyze_concurrency",
    "analyze_hotpath",
    "build_model",
    "default_lint_paths",
    "render_json",
    "render_text",
    "run_lint",
    "self_check",
    "summarize",
]

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent  # src/repro


def default_lint_paths() -> list[Path]:
    """The concurrent surface the lint gate covers by default."""
    serve = sorted((_PACKAGE_ROOT / "serve").glob("*.py"))
    kernels = _PACKAGE_ROOT / "core" / "wavepipe" / "kernels.py"
    return [path for path in serve if path.name != "__init__.py"] + [
        kernels
    ]


def run_lint(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    *,
    sanitizer_check: bool = True,
) -> list[Finding]:
    """Run every analyzer; returns merged findings (suppressed marked).

    Both AST analyzers see every file: the hot-path rules only engage
    on ``# lint: hot`` functions, so running them repo-wide costs
    nothing and means a hot marker added anywhere is honored.  Reason-
    less suppression comments are reported once per file from here (not
    per analyzer, which would double-count shared files).
    """
    targets = [Path(path) for path in (paths or default_lint_paths())]
    sources = [
        (str(path), path.read_text(encoding="utf-8")) for path in targets
    ]
    findings = list(analyze_concurrency(sources))
    findings.extend(analyze_hotpath(sources))
    for path, text in sources:
        findings.extend(
            Suppressions.scan(text).bad_suppression_findings(
                path, "report"
            )
        )
    if sanitizer_check:
        findings.extend(self_check())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
