"""Allow ``python -m repro``.

The ``__main__`` guard is load-bearing: the serving layer's process
shards use the ``spawn`` start method, which re-imports the parent's
main module in every worker (as ``__mp_main__``) — without the guard a
``python -m repro serve-bench --process-shards N`` worker would re-run
the CLI instead of starting its shard loop.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
