"""Wave pipelining for majority-based beyond-CMOS technologies.

Reproduction of Zografos et al., "Wave Pipelining for Majority-based
Beyond-CMOS Technologies", DATE 2017.

The public API is re-exported here; see README.md for a tour.

>>> import repro
>>> mig = repro.Mig()
>>> a, b, c = mig.add_pis(3)
>>> _ = mig.add_po(mig.add_maj(a, b, c), "carry")
"""

from .core import (
    FALSE,
    TRUE,
    Aoig,
    Mig,
    MigView,
    Signal,
    assert_equivalent,
    check_equivalence,
    count_inverters,
    depth_of,
    is_balanced,
    minimize_inverters,
    optimize,
    optimize_depth,
    optimize_size,
    simulate_vectors,
    truth_tables,
)

__version__ = "0.1.0"

__all__ = [
    "Aoig",
    "FALSE",
    "Mig",
    "MigView",
    "Signal",
    "TRUE",
    "__version__",
    "assert_equivalent",
    "check_equivalence",
    "count_inverters",
    "depth_of",
    "is_balanced",
    "minimize_inverters",
    "optimize",
    "optimize_depth",
    "optimize_size",
    "simulate_vectors",
    "truth_tables",
]
