"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``flow``
    Run the wave-pipelining flow on a suite benchmark, a built-in circuit,
    or a netlist file, print the statistics, and optionally export the
    result (.mig / .blif / .v).
``experiments``
    Regenerate the paper's tables and figures (``--which all`` or a list),
    printing the ASCII renderings and optionally writing CSVs.
``simulate``
    Phase-accurate wave simulation of a (transformed) benchmark under the
    regeneration clock — ``--engine packed`` uses the bit-packed batched
    engine (numba-JIT step kernels when numba is installed, fused numpy
    otherwise; ``--no-jit`` forces the latter), ``--engine both``
    cross-checks the engines and reports the speedup, ``--streams N``
    batches N independent wave streams through the netlist in one packed
    pass (the serving scenario).
``serve``
    Network serving tier: bind the micro-batching simulation server to
    a TCP socket (``--listen HOST:PORT``) speaking the length-prefixed
    numpy wire format of :mod:`repro.serve.net`.  Optionally
    pre-compiles (warms) a list of benchmarks at startup, drains
    gracefully on SIGTERM, and prints the bound address for clients
    (:class:`repro.serve.SimulationClient`).
``serve-bench``
    Closed-loop load test of the micro-batching simulation server
    (:mod:`repro.serve`): N concurrent clients drive wave-stream requests
    through a sharded ``SimulationServer``, reporting p50/p99 latency and
    sustained waves/sec against the one-request-at-a-time packed
    baseline — with every served report checked bit-identical to its
    solo-run counterpart.  ``--open-loop`` switches to the seeded
    open-loop generator (Poisson/uniform/bursty arrivals at a fixed
    offered rate, heavy-tail size mixes) and emits a replayable JSON
    SLO report whose offered-traffic ledger must balance; ``--socket``
    additionally replays the same scenario through the network tier.
``suite``
    List the 37-benchmark suite with structural targets.
``techs``
    Show the built-in technology models (Table I).
``lint``
    Run the :mod:`repro.devtools` static analyzers (concurrency
    lock-guard/lock-order lint, hot-path allocation lint, the
    determinism and lifecycle dataflow families, runtime sanitizer
    self-check) over the serving tier and the wave-pipeline engine;
    exits nonzero on unsuppressed findings — the CI lint gate.
    ``--sarif`` emits the GitHub code-scanning report CI uploads.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from . import __version__
from .core.mig import Mig
from .core.wavepipe import WaveNetlist, wave_pipeline
from .errors import ReproError, ServerClosed, ShardFailed
from .tech import TECHNOLOGIES, evaluate_pair


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wave pipelining for majority-based beyond-CMOS "
        "technologies (DATE 2017 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    flow = commands.add_parser("flow", help="run the FOx+BUF flow")
    flow.add_argument(
        "source",
        help="suite benchmark name, 'circuit:<name>[:<width>]', or a "
        ".mig/.blif file path",
    )
    flow.add_argument(
        "--fanout-limit", type=int, default=3,
        help="fan-out restriction (2..5; 0 disables the pass)",
    )
    flow.add_argument(
        "--no-balance", action="store_true",
        help="skip buffer insertion (FOx-only configuration)",
    )
    flow.add_argument(
        "--no-verify", action="store_true", help="skip invariant checks"
    )
    flow.add_argument(
        "--export", type=Path, default=None,
        help="write the transformed netlist (.mig, .blif or .v)",
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "--which", nargs="+", default=["all"],
        help="artifacts: table1 fig5 fig7 fig8 table2 fig9 "
        "fig9_throughput (or 'all')",
    )
    experiments.add_argument(
        "--csv-dir", type=Path, default=None,
        help="also write one CSV per artifact into this directory",
    )

    simulate = commands.add_parser(
        "simulate", help="phase-accurate wave simulation of a benchmark",
        description="Phase-accurate wave simulation under the "
        "regeneration clock.  The packed engine picks its step-loop "
        "kernel automatically: the numba-JIT loop nest when numba is "
        "installed (the repro[jit] extra), else fused pure-numpy "
        "kernels; on balanced netlists the per-lane wave-id tracking is "
        "elided entirely (interference is provably impossible), on "
        "unbalanced ones the tracked kernels reproduce the scalar "
        "oracle's interference events bit for bit.",
    )
    simulate.add_argument("source", help="same source syntax as 'flow'")
    simulate.add_argument(
        "--engine", choices=("python", "packed", "both"), default="packed",
        help="simulation engine (default: packed); 'both' cross-checks "
        "the packed engine against the scalar oracle",
    )
    simulate.add_argument(
        "--no-jit", action="store_true",
        help="never use the numba-JIT step kernels: force the fused "
        "pure-numpy backend (same reports, bit for bit); equivalent to "
        "REPRO_JIT=0",
    )
    simulate.add_argument(
        "--waves", type=int, default=256,
        help="number of random data waves to inject (default: 256)",
    )
    simulate.add_argument(
        "--streams", type=int, default=0,
        help="batch this many independent wave streams of --waves each "
        "through the netlist in one packed pass (0 = single stream)",
    )
    simulate.add_argument(
        "--phases", type=int, default=3,
        help="regeneration clock phase count (default: 3)",
    )
    simulate.add_argument(
        "--fanout-limit", type=int, default=3,
        help="fan-out restriction applied before simulation (0 disables)",
    )
    simulate.add_argument(
        "--raw", action="store_true",
        help="simulate the untransformed netlist (shows wave interference)",
    )
    simulate.add_argument(
        "--no-pipeline", action="store_true",
        help="inject one wave at a time (non-pipelined baseline)",
    )
    simulate.add_argument(
        "--seed", type=int, default=0, help="random vector seed"
    )

    serve = commands.add_parser(
        "serve-bench",
        help="closed-loop load test of the micro-batching server",
        description="Drive concurrent wave-stream requests through the "
        "micro-batching SimulationServer (repro.serve) and compare the "
        "sustained throughput and latency against simulating the same "
        "requests one at a time with the packed engine.  Every served "
        "report is verified bit-identical to its solo-run counterpart.  "
        "A comma-separated source list (e.g. 'ctrl,i2c') drives a "
        "multi-netlist mix — the traffic shape where sharding pays — "
        "and --process-shards N additionally times a process-sharded "
        "server against the thread-sharded one on the same payloads.",
    )
    serve.add_argument(
        "source", nargs="?", default="ctrl",
        help="benchmark (same source syntax as 'flow'), or a "
        "comma-separated list for a multi-netlist request mix "
        "(default: ctrl)",
    )
    serve.add_argument(
        "--requests", type=int, default=256,
        help="total requests to serve (default: 256)",
    )
    serve.add_argument(
        "--waves", type=int, default=64,
        help="waves per request (default: 64)",
    )
    serve.add_argument(
        "--concurrency", type=int, default=0,
        help="closed-loop client threads (default: one per request, so "
        "the whole set is in flight at once)",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="server shard threads (default: 2); pays off with "
        "multi-netlist traffic",
    )
    serve.add_argument(
        "--process-shards", type=int, default=0,
        help="also time a server with this many worker *processes* "
        "(true multi-core sharding, no GIL) against the thread-sharded "
        "run on the same payloads (default: 0 = threads only)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request deadline in seconds (server-side deadline "
        "scheduling; expired requests fail with DeadlineExceeded and "
        "are reported, not simulated)",
    )
    serve.add_argument(
        "--oracle", action="store_true",
        help="verify served reports against solo *scalar-oracle* runs "
        "(engine='python') instead of solo packed runs — the strongest "
        "identity check, but slow on large request sets",
    )
    serve.add_argument(
        "--max-batch-requests", type=int, default=None,
        help="coalescing cap: requests per packed pass",
    )
    serve.add_argument(
        "--max-batch-waves", type=int, default=None,
        help="coalescing cap: total waves per packed pass",
    )
    serve.add_argument(
        "--max-linger-steps", type=int, default=None,
        help="linger rounds a non-full batch waits for late arrivals",
    )
    serve.add_argument(
        "--phases", type=int, default=3,
        help="regeneration clock phase count (default: 3)",
    )
    serve.add_argument(
        "--fanout-limit", type=int, default=3,
        help="fan-out restriction applied before serving (0 disables)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="random vector seed"
    )
    serve.add_argument(
        "--trials", type=int, default=3,
        help="closed-loop trials; the best sustained rate is reported "
        "(default: 3 — scheduling jitter on loaded hosts is real)",
    )
    serve.add_argument(
        "--no-jit", action="store_true",
        help="force the fused pure-numpy kernels (same reports)",
    )
    serve.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help="inject seeded chaos into the dispatch path, e.g. "
        "'crash=0.1,hang=0.05,slow=0.2,slow-s=0.01' (keys: crash/"
        "crash-mid, crash-pre, eof, hang, slow; delays slow-s/hang-s; "
        "'seed=N' overrides --fault-seed).  The printed seed line "
        "replays the exact fault schedule",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed of the fault schedule (default: 0); every fault "
        "decision is a pure function of this seed",
    )
    serve.add_argument(
        "--dispatch-timeout", type=float, default=None, metavar="S",
        help="hang detection for process shards: a worker silent for "
        "this many seconds under a batch is SIGKILL-reaped and the "
        "batch retried (default: off)",
    )
    serve.add_argument(
        "--open-loop", action="store_true",
        help="open-loop mode: arrivals follow a seeded schedule at "
        "--rate requests/s regardless of completions (measures what a "
        "closed loop hides: queueing delay under a fixed offered "
        "rate), and the result is a JSON SLO report with a balanced "
        "offered-traffic ledger",
    )
    serve.add_argument(
        "--rate", type=float, default=50.0, metavar="RPS",
        help="open-loop offered rate in requests per second "
        "(default: 50)",
    )
    serve.add_argument(
        "--arrival", choices=("poisson", "uniform", "bursty"),
        default="poisson",
        help="open-loop arrival process (default: poisson)",
    )
    serve.add_argument(
        "--arrival-burst", type=int, default=8, metavar="N",
        help="requests per burst epoch for --arrival bursty "
        "(default: 8)",
    )
    serve.add_argument(
        "--size-mix", type=str, default=None, metavar="MIX",
        help="open-loop request-size mix as WAVES:WEIGHT pairs, e.g. "
        "'16:70,64:24,256:5,1024:1', or the keyword 'heavy-tail' for "
        "that built-in mix (default: every request carries --waves "
        "waves)",
    )
    serve.add_argument(
        "--stream", action="store_true",
        help="streaming mode: drive --stream-sessions concurrent "
        "open_stream sessions of --requests feed() chunks x --waves "
        "waves each against one warm per-plan engine state, verify "
        "every feed bit-identical to its slice of a solo run of the "
        "concatenated waves, and compare sustained throughput",
    )
    serve.add_argument(
        "--stream-sessions", type=int, default=4, metavar="N",
        help="concurrent streaming sessions for --stream (default: 4)",
    )
    serve.add_argument(
        "--socket", action="store_true",
        help="with --open-loop: replay the same scenario through the "
        "network tier (loopback SocketServer + SimulationClient); "
        "with --stream: drive the sessions through it.  Reports both "
        "tiers side by side",
    )
    serve.add_argument(
        "--json-out", type=str, default=None, metavar="PATH",
        help="with --open-loop: write the JSON SLO document to PATH "
        "instead of stdout",
    )

    servecmd = commands.add_parser(
        "serve",
        help="serve simulations over a TCP socket (network tier)",
        description="Bind a micro-batching SimulationServer to a TCP "
        "socket speaking the length-prefixed numpy wire format "
        "(repro.serve.net).  Clients connect with "
        "repro.serve.SimulationClient and get the exact submit/"
        "submit_many/Future API of the in-process server — reports are "
        "bit-identical.  An optional comma-separated source list is "
        "compiled at startup (and shipped to worker processes) so the "
        "first request after a restart does not pay the compile miss.  "
        "SIGTERM drains in-flight work before exiting.",
    )
    servecmd.add_argument(
        "source", nargs="?", default=None,
        help="optional comma-separated benchmarks (same source syntax "
        "as 'flow') to pre-compile at startup, e.g. 'ctrl,i2c'",
    )
    servecmd.add_argument(
        "--listen", type=str, default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address (default: 127.0.0.1:0 — port 0 picks a free "
        "port; the bound address is printed)",
    )
    servecmd.add_argument(
        "--shards", type=int, default=2,
        help="server shard threads (default: 2)",
    )
    servecmd.add_argument(
        "--process-shards", type=int, default=0,
        help="worker processes instead of shard threads (default: 0)",
    )
    servecmd.add_argument(
        "--max-pending", type=int, default=None,
        help="bounded admission queue size (requests); full queue "
        "rejects with a typed queue_full wire error",
    )
    servecmd.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="default per-request deadline in seconds",
    )
    servecmd.add_argument(
        "--phases", type=int, default=3,
        help="regeneration clock phase count (default: 3)",
    )
    servecmd.add_argument(
        "--fanout-limit", type=int, default=3,
        help="fan-out restriction applied to warm sources (0 disables)",
    )
    servecmd.add_argument(
        "--dispatch-timeout", type=float, default=None, metavar="S",
        help="hang detection for process shards (seconds; default: off)",
    )
    servecmd.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="serve for S seconds then drain and exit (default: serve "
        "until SIGTERM/SIGINT)",
    )
    servecmd.add_argument(
        "--no-jit", action="store_true",
        help="force the fused pure-numpy kernels (same reports)",
    )

    commands.add_parser("suite", help="list the benchmark suite")
    commands.add_parser("techs", help="show the technology models")

    stats = commands.add_parser(
        "stats", help="structural profile of a benchmark/circuit/file"
    )
    stats.add_argument("source", help="same source syntax as 'flow'")

    lint = commands.add_parser(
        "lint",
        help="static concurrency/determinism/lifecycle analysis (CI gate)",
        description="Run the repro.devtools analyzers over repro.serve "
        "and repro.core.wavepipe: lock-guard inference and the "
        "lock-order graph, the zero-allocation check of the "
        "'# lint: hot' kernel loops, the determinism family (unordered "
        "iteration on result paths, unseeded RNG, wall-clock taint, "
        "order-dependent float reductions), the CFG/dataflow lifecycle "
        "family (stranded futures, leaked processes/pipes/files), and "
        "the runtime lock sanitizer's self-check.  Exits 1 when any "
        "unsuppressed finding remains; findings are silenced in-source "
        "with '# lint: <family>-ok(reason)' and the reason is "
        "mandatory.",
    )
    report_format = lint.add_mutually_exclusive_group()
    report_format.add_argument(
        "--json", action="store_true",
        help="machine-readable report (findings + summary)",
    )
    report_format.add_argument(
        "--sarif", action="store_true",
        help="SARIF 2.1.0 report (GitHub code-scanning upload format; "
        "suppressed findings carry inSource suppressions)",
    )
    lint.add_argument(
        "--show-suppressed", action="store_true",
        help="also print suppressed findings with their reasons",
    )
    lint.add_argument(
        "--paths", nargs="+", type=Path, default=None,
        help="analyze these files instead of the default surface "
        "(repro.serve + repro.core.wavepipe)",
    )
    lint.add_argument(
        "--no-self-check", action="store_true",
        help="skip the runtime sanitizer self-check",
    )
    return parser


def _load_source(token: str) -> Mig:
    """Resolve a flow source token into a MIG."""
    if token.startswith("circuit:"):
        from .suite.circuits import CIRCUITS

        parts = token.split(":")
        name = parts[1]
        if name not in CIRCUITS:
            known = ", ".join(sorted(CIRCUITS))
            raise ReproError(f"unknown circuit {name!r}; choose from {known}")
        builder = CIRCUITS[name]
        width = int(parts[2]) if len(parts) > 2 else 8
        if name == "voter" and width % 2 == 0:
            width += 1
        return builder(width)
    path = Path(token)
    if path.suffix == ".mig" and path.exists():
        from .io.migfile import read_mig

        return read_mig(path)
    if path.suffix == ".blif" and path.exists():
        from .io.blif import read_blif

        return read_blif(path)
    from .suite.table import build_benchmark

    return build_benchmark(token)


def _export(netlist: WaveNetlist, path: Path) -> None:
    if path.suffix == ".mig":
        from .io.migfile import write_mig

        write_mig(netlist.to_mig(), path)
    elif path.suffix == ".blif":
        from .io.blif import write_blif

        write_blif(netlist.to_mig(), path)
    elif path.suffix == ".v":
        from .io.verilog import write_verilog

        write_verilog(netlist, path)
    else:
        raise ReproError(f"unknown export format {path.suffix!r}")


def _run_flow(args: argparse.Namespace, out) -> int:
    mig = _load_source(args.source)
    limit = args.fanout_limit if args.fanout_limit else None
    started = time.perf_counter()
    result = wave_pipeline(
        mig,
        fanout_limit=limit,
        balance=not args.no_balance,
        verify=not args.no_verify,
    )
    elapsed = time.perf_counter() - started
    stats = result.netlist.stats()
    print(f"benchmark : {mig.name}", file=out)
    print(
        f"original  : size={result.size_before} depth={result.depth_before} "
        f"inputs={mig.n_pis} outputs={mig.n_pos}",
        file=out,
    )
    print(
        f"wave-ready: size={result.size_after} depth={result.depth_after} "
        f"(maj={stats.n_maj} buf={stats.n_buf} fog={stats.n_fog} "
        f"inv={stats.n_inverters})",
        file=out,
    )
    print(
        f"impact    : {result.size_ratio:.2f}x components, "
        f"+{result.depth_after - result.depth_before} levels, "
        f"{elapsed:.2f}s",
        file=out,
    )
    if not args.no_balance:
        for tech in TECHNOLOGIES:
            before, after, tech_gains = evaluate_pair(
                result.original, result.netlist, tech
            )
            print(
                f"{tech.name:>4}     : T/A {tech_gains.t_over_a:5.2f}x   "
                f"T/P {tech_gains.t_over_p:5.2f}x   "
                f"throughput {before.throughput_mops:.2f} -> "
                f"{after.throughput_mops:.2f} MOPS",
                file=out,
            )
    if args.export is not None:
        _export(result.netlist, args.export)
        print(f"exported  : {args.export}", file=out)
    return 0


def _time_engines(engines, simulate, describe, out):
    """Run *simulate* per engine, printing one described line each."""
    results = {}
    timings = {}
    for engine in engines:
        started = time.perf_counter()
        results[engine] = simulate(engine)
        timings[engine] = time.perf_counter() - started
        line = describe(results[engine], timings[engine])
        print(f"{engine:>9} : {line}", file=out)
    return results, timings


def _check_golden(matches: bool, raw: bool, out) -> None:
    print(f"golden    : {'ok' if matches else 'MISMATCH'}", file=out)
    if not matches and not raw:
        # on a transformed netlist a golden mismatch is a real failure
        # (with --raw it is the expected interference demonstration)
        raise ReproError("simulation outputs diverged from the golden model")


def _check_engines_identical(results, timings, out) -> None:
    if len(results) != 2:
        return
    identical = results["python"] == results["packed"]  # every report field
    speedup = timings["python"] / max(timings["packed"], 1e-9)
    print(
        f"engines   : {'identical' if identical else 'DIVERGED'}, "
        f"packed speedup {speedup:.1f}x",
        file=out,
    )
    if not identical:
        raise ReproError("packed engine diverged from the scalar oracle")


def _run_simulate(args: argparse.Namespace, out) -> int:
    from .core.simulate import simulate_vectors
    from .core.wavepipe import (
        ClockingScheme,
        describe_packed_run,
        random_vectors,
        set_default_backend,
        simulate_streams,
        simulate_waves,
    )

    if args.no_jit:
        set_default_backend("fused")
    mig = _load_source(args.source)
    if args.raw:
        netlist = WaveNetlist.from_mig(mig)
    else:
        netlist = wave_pipeline(
            mig,
            fanout_limit=args.fanout_limit or None,
            verify=False,
        ).netlist
    print(f"benchmark : {mig.name}", file=out)
    print(f"netlist   : {netlist}", file=out)

    clocking = ClockingScheme(args.phases)
    if args.engine != "python":
        info = describe_packed_run(
            netlist, max(0, args.waves), clocking=clocking,
            pipelined=not args.no_pipeline,
            n_streams=max(1, args.streams),
        )
        print(
            f"kernel    : backend={info['backend']}"
            f"{' (jit)' if info['jit_compiled'] else ''}, "
            f"tracking={'elided' if info['elided_tracking'] else 'tracked'}, "
            f"plan={info['lanes']} lanes / {info['words']} words / "
            f"{info['steps']} steps",
            file=out,
        )
    pipelined = not args.no_pipeline
    engines = ("python", "packed") if args.engine == "both" else (args.engine,)
    # one functional-model rebuild serves every golden comparison below
    reference_mig = netlist.to_mig()

    if args.streams > 0:
        # serving scenario: independent streams batched across bit-lanes
        streams = [
            random_vectors(
                netlist.n_inputs, max(0, args.waves), seed=args.seed + k
            )
            for k in range(args.streams)
        ]

        def describe(reports, seconds):
            total_waves = sum(r.waves_retired for r in reports)
            events = sum(len(r.interference) for r in reports)
            steady = reports[0].steady_state_throughput() if reports else 0.0
            return (
                f"{len(reports)} streams, {total_waves} waves in "
                f"{seconds:.3f}s, steady-state {steady:.3f} "
                f"waves/step/stream, {events} interference events"
            )

        batches, timings = _time_engines(
            engines,
            lambda engine: simulate_streams(
                netlist, streams, clocking=clocking,
                pipelined=pipelined, engine=engine,
            ),
            describe,
            out,
        )
        matches = all(
            report.outputs == simulate_vectors(reference_mig, stream)
            for report, stream in zip(batches[engines[0]], streams)
        )
        _check_golden(matches, args.raw, out)
        _check_engines_identical(batches, timings, out)
        return 0

    vectors = random_vectors(
        netlist.n_inputs, max(0, args.waves), seed=args.seed
    )

    def describe(report, seconds):
        return (
            f"{report.waves_retired} waves in {report.steps_run} steps "
            f"({seconds:.3f}s), throughput "
            f"{report.measured_throughput():.3f} end-to-end / "
            f"{report.steady_state_throughput():.3f} steady waves/step, "
            f"{len(report.interference)} interference events"
        )

    reports, timings = _time_engines(
        engines,
        lambda engine: simulate_waves(
            netlist, vectors, clocking=clocking,
            pipelined=pipelined, engine=engine,
        ),
        describe,
        out,
    )
    matches = (
        reports[engines[0]].outputs == simulate_vectors(reference_mig, vectors)
    )
    _check_golden(matches, args.raw, out)
    _check_engines_identical(reports, timings, out)
    return 0


def _run_serve_bench(args: argparse.Namespace, out) -> int:
    if args.open_loop and args.stream:
        raise ReproError("--open-loop and --stream are exclusive modes")
    if args.open_loop:
        return _run_open_loop_bench(args, out)
    if args.stream:
        return _run_streaming_bench(args, out)
    if args.socket or args.json_out is not None:
        raise ReproError(
            "--socket/--json-out apply to --open-loop/--stream modes only"
        )
    from .core.wavepipe import (
        ClockingScheme,
        random_vectors,
        set_default_backend,
        simulate_waves,
        simulate_waves_packed,
    )
    from .serve import (
        FaultPlan,
        SimulationServer,
        graceful_drain,
        run_closed_loop,
    )

    if args.no_jit:
        set_default_backend("fused")
    if args.requests < 1:
        raise ReproError("serve-bench needs at least one request")
    import numpy as np

    migs = [_load_source(token) for token in args.source.split(",")]
    netlists = [
        wave_pipeline(
            mig, fanout_limit=args.fanout_limit or None, verify=False
        ).netlist
        for mig in migs
    ]
    clocking = ClockingScheme(args.phases)
    # request payloads are numpy bool blocks — the wire format a real
    # client would send — built once, outside every timed window; the
    # solo baseline consumes the exact same payload objects.  Multi-
    # netlist mixes interleave the models round-robin per request.
    models = [netlists[index % len(netlists)]
              for index in range(args.requests)]
    requests = [
        np.asarray(
            random_vectors(
                models[index].n_inputs, max(0, args.waves),
                seed=args.seed + index,
            ),
            dtype=bool,
        ).reshape(max(0, args.waves), models[index].n_inputs)
        for index in range(args.requests)
    ]
    total_waves = sum(len(stream) for stream in requests)
    for mig, netlist in zip(migs, netlists):
        print(f"benchmark : {mig.name}", file=out)
        print(f"netlist   : {netlist}", file=out)
    print(
        f"load      : {args.requests} requests x {args.waves} waves"
        f"{f' across {len(netlists)} netlists' if len(netlists) > 1 else ''}, "
        f"concurrency {args.concurrency or args.requests}",
        file=out,
    )

    # baseline: the same requests, one packed pass each, back to back.
    # The warm-up must *run the kernel* (an empty stream would
    # short-circuit before it), so compile, scratch setup, and any
    # numba JIT compilation are excluded from every measured window
    # alike — one real stream per netlist
    warm_streams = [
        np.asarray(
            random_vectors(
                netlist.n_inputs, max(1, args.waves), seed=args.seed
            ),
            dtype=bool,
        )
        for netlist in netlists
    ]
    for netlist, warm in zip(netlists, warm_streams):
        simulate_waves_packed(netlist, warm, clocking=clocking)
    started = time.perf_counter()
    solo = [
        simulate_waves_packed(model, stream, clocking=clocking)
        for model, stream in zip(models, requests)
    ]
    solo_elapsed = time.perf_counter() - started
    solo_rate = total_waves / solo_elapsed if solo_elapsed else 0.0
    print(
        f"solo      : {total_waves} waves in {solo_elapsed:.3f}s "
        f"({solo_rate:,.0f} waves/s one request at a time)",
        file=out,
    )
    reference = solo
    if args.oracle:
        # the strongest identity reference: the scalar oracle, stream
        # by stream (slow — this is a verification mode, not a
        # baseline); the scalar loop consumes row lists, not blocks
        reference = [
            simulate_waves(model, stream.tolist(), clocking=clocking,
                           engine="python")
            for model, stream in zip(models, requests)
        ]

    knobs = {}
    if args.max_batch_requests is not None:
        knobs["max_batch_requests"] = args.max_batch_requests
    if args.max_batch_waves is not None:
        knobs["max_batch_waves"] = args.max_batch_waves
    if args.max_linger_steps is not None:
        knobs["max_linger_steps"] = args.max_linger_steps
    if args.dispatch_timeout is not None:
        knobs["dispatch_timeout_s"] = args.dispatch_timeout

    def serve_once(label: str, process_shards: int):
        """One serving configuration: trials, identity, report lines."""
        identical = True
        # a fresh plan per configuration: both runs see the identical
        # seeded fault schedule, and the printed line replays either
        plan = (
            None if args.faults is None
            else FaultPlan.parse(args.faults, seed=args.fault_seed)
        )
        if plan is not None:
            print(f"faults    : {plan.describe()} (replayable)", file=out)
        drained = False
        with SimulationServer(
            shards=args.shards,
            process_shards=process_shards,
            max_pending=max(args.requests, 1024),
            clocking=clocking,
            faults=plan,
            **knobs,
        ) as server, graceful_drain(server):
            # warm the serving path (shard/worker wake-up, plan
            # compile, worker-side kernel warm) the same way the solo
            # loop was warmed — real streams, not empty ones.  Chaos
            # may quarantine a warm-up batch; that is fine, the warm-up
            # is best-effort
            for netlist, warm in zip(netlists, warm_streams):
                try:
                    server.submit(
                        netlist, warm, clocking=clocking
                    ).result()
                except ShardFailed:
                    pass
            load = None
            for _ in range(max(1, args.trials)):
                try:
                    trial = run_closed_loop(
                        server,
                        None if len(netlists) > 1 else netlists[0],
                        requests,
                        netlists=models if len(netlists) > 1 else None,
                        clocking=clocking,
                        concurrency=args.concurrency or None,
                        deadline_s=args.deadline,
                    )
                except ServerClosed:
                    # SIGTERM mid-trial: the drain served everything
                    # already admitted, later submissions were refused
                    drained = True
                    break
                identical = identical and all(
                    got == want
                    for got, want in zip(trial.reports, reference)
                    if got is not None
                ) and (
                    args.deadline is not None
                    or plan is not None
                    or None not in trial.reports
                )
                if load is None or trial.waves_per_s > load.waves_per_s:
                    load = trial
            metrics = server.metrics.snapshot()
        if drained and load is None:
            print(
                f"{label:<10}: drained on SIGTERM before a full trial",
                file=out,
            )
            return None, identical
        speedup = load.waves_per_s / solo_rate if solo_rate else 0.0
        print(
            f"{label:<10}: {load.total_waves} waves in "
            f"{load.elapsed_s:.3f}s ({load.waves_per_s:,.0f} waves/s "
            f"sustained, {speedup:.1f}x over solo; best of "
            f"{max(1, args.trials)} trials)",
            file=out,
        )
        print(
            f"latency   : p50 {load.p50_s * 1e3:.1f} ms, "
            f"p99 {load.p99_s * 1e3:.1f} ms (closed loop, queueing "
            "included)",
            file=out,
        )
        print(
            f"batching  : {metrics['batches']} batches, mean "
            f"{metrics['mean_batch_requests']:.1f} requests/batch "
            f"(max {metrics['max_batch_requests']}), plan cache "
            f"{metrics['plan_cache_hits']} hits / "
            f"{metrics['plan_cache_misses']} misses",
            file=out,
        )
        if args.deadline is not None:
            print(
                f"deadlines : {metrics['expired']} expired "
                f"(deadline {args.deadline * 1e3:.1f} ms)",
                file=out,
            )
        supervision = (
            metrics["worker_restarts"]
            or metrics["hung_workers"]
            or metrics["breaker_opens"]
            or metrics["shard_failed"]
        )
        if supervision:
            print(
                f"workers   : {metrics['worker_restarts']} restarts, "
                f"{metrics['hung_workers']} hung reaped, "
                f"{metrics['breaker_opens']} breaker trips, "
                f"{metrics['shard_failed']} requests quarantined",
                file=out,
            )
        if plan is not None:
            fired = plan.injected()
            summary = ", ".join(
                f"{kind}={count}"
                for kind, count in fired.items()
                if count
            ) or "none fired"
            print(f"injected  : {summary}", file=out)
        return load, identical

    thread_load, identical = serve_once("served", 0)
    if args.process_shards and thread_load is not None:
        process_load, process_identical = serve_once(
            "processes", args.process_shards
        )
        identical = identical and process_identical
        if process_load is not None:
            ratio = (
                process_load.waves_per_s / thread_load.waves_per_s
                if thread_load.waves_per_s else 0.0
            )
            print(
                f"sharding  : {args.process_shards} worker processes at "
                f"{ratio:.2f}x the thread-shard rate "
                f"({process_load.waves_per_s:,.0f} vs "
                f"{thread_load.waves_per_s:,.0f} waves/s)",
                file=out,
            )
    print(
        f"identity  : {'ok' if identical else 'MISMATCH'} "
        f"(every served report vs its solo "
        f"{'scalar-oracle' if args.oracle else 'packed'} run, "
        "every trial)",
        file=out,
    )
    if not identical:
        raise ReproError("served reports diverged from solo runs")
    return 0


def _run_streaming_bench(args: argparse.Namespace, out) -> int:
    """``serve-bench --stream``: streaming sessions vs solo packed runs.

    Each session feeds its chunks into one warm per-plan engine state;
    the baseline simulates each session's *concatenated* waves as one
    solo packed run.  Every feed report is verified bit-identical to
    its slice of that solo run — the resumability contract — before any
    throughput figure is trusted.
    """
    from .core.wavepipe import (
        ClockingScheme,
        random_vectors,
        set_default_backend,
        simulate_waves_packed,
    )
    from .serve import (
        FaultPlan,
        SimulationClient,
        SimulationServer,
        SocketServer,
        run_streaming,
    )

    if args.json_out is not None:
        raise ReproError("--json-out applies to --open-loop mode only")
    if args.no_jit:
        set_default_backend("fused")
    if "," in args.source:
        raise ReproError(
            "--stream drives one netlist per run (sessions are sticky "
            "to one plan); pass a single source"
        )
    if args.stream_sessions < 1:
        raise ReproError("--stream-sessions must be >= 1")
    if args.requests < args.stream_sessions:
        raise ReproError("--stream needs at least one feed per session")
    if args.waves < 1:
        raise ReproError("--stream needs at least one wave per feed")
    import numpy as np

    mig = _load_source(args.source)
    netlist = wave_pipeline(
        mig, fanout_limit=args.fanout_limit or None, verify=False
    ).netlist
    clocking = ClockingScheme(args.phases)
    sessions = args.stream_sessions
    feeds = max(1, args.requests // sessions)
    payloads = [
        [
            np.asarray(
                random_vectors(
                    netlist.n_inputs, args.waves,
                    seed=args.seed + session * feeds + feed,
                ),
                dtype=bool,
            ).reshape(args.waves, netlist.n_inputs)
            for feed in range(feeds)
        ]
        for session in range(sessions)
    ]
    total_waves = sessions * feeds * args.waves
    print(f"benchmark : {mig.name}", file=out)
    print(f"netlist   : {netlist}", file=out)
    print(
        f"load      : {sessions} sessions x {feeds} feeds x "
        f"{args.waves} waves (streaming, no think time)",
        file=out,
    )

    # solo baseline: each session's concatenated waves as ONE packed
    # run — the throughput a streaming session must not fall behind.
    # Warm first so kernel compilation stays outside both windows.
    concatenated = [np.concatenate(chunks) for chunks in payloads]
    simulate_waves_packed(netlist, concatenated[0], clocking=clocking)
    started = time.perf_counter()
    solo = [
        simulate_waves_packed(netlist, block, clocking=clocking)
        for block in concatenated
    ]
    solo_elapsed = time.perf_counter() - started
    solo_rate = total_waves / solo_elapsed if solo_elapsed else 0.0
    print(
        f"solo      : {total_waves} waves in {solo_elapsed:.3f}s "
        f"({solo_rate:,.0f} waves/s, one concatenated run per session)",
        file=out,
    )
    # slice the solo outputs at the feed boundaries once
    slices = [
        [
            solo[session].outputs[feed * args.waves:(feed + 1) * args.waves]
            for feed in range(feeds)
        ]
        for session in range(sessions)
    ]

    plan = (
        None if args.faults is None
        else FaultPlan.parse(args.faults, seed=args.fault_seed)
    )
    if plan is not None:
        print(f"faults    : {plan.describe()} (replayable)", file=out)
    knobs = {}
    if args.dispatch_timeout is not None:
        knobs["dispatch_timeout_s"] = args.dispatch_timeout

    def stream_once(label: str, target, server) -> bool:
        """Trials against one target; prints lines, returns identity."""
        identical = True
        load = None
        for _ in range(max(1, args.trials)):
            trial = run_streaming(
                target,
                netlist,
                clocking=clocking,
                deadline_s=args.deadline,
                payloads=payloads,
            )
            for session in range(sessions):
                for feed in range(feeds):
                    report = trial.reports[session][feed]
                    if report is None:
                        # acceptable only under injected chaos or
                        # deadlines; otherwise the identity check fails
                        identical = identical and (
                            plan is not None or args.deadline is not None
                        )
                        continue
                    identical = identical and (
                        report.outputs == slices[session][feed]
                    )
            if load is None or trial.waves_per_s > load.waves_per_s:
                load = trial
        ratio = load.waves_per_s / solo_rate if solo_rate else 0.0
        print(
            f"{label:<10}: {load.total_waves} waves in "
            f"{load.elapsed_s:.3f}s ({load.waves_per_s:,.0f} waves/s "
            f"sustained, {ratio:.2f}x the solo rate; best of "
            f"{max(1, args.trials)} trials)",
            file=out,
        )
        print(
            f"latency   : p50 {load.p50_s * 1e3:.1f} ms, "
            f"p99 {load.p99_s * 1e3:.1f} ms per feed (queueing and "
            "pump pipelining included)",
            file=out,
        )
        if load.replays or load.failed:
            print(
                f"sessions  : {load.replays} feed-log replays, "
                f"{len(load.failed)} feeds failed typed",
                file=out,
            )
        metrics = server.metrics.snapshot()
        print(
            f"streams   : {metrics['sessions_opened']} opened / "
            f"{metrics['sessions_closed']} closed, "
            f"{metrics['session_feeds']} feeds, "
            f"{metrics['session_waves']} waves, "
            f"{metrics['session_replays']} replays (server totals)",
            file=out,
        )
        return identical

    with SimulationServer(
        shards=args.shards,
        process_shards=args.process_shards,
        clocking=clocking,
        faults=plan,
        **knobs,
    ) as server:
        # warm the serving path exactly like the solo loop was warmed
        with server.open_stream(netlist) as warm:
            warm.feed(payloads[0][0]).result()
        identical = stream_once("streamed", server, server)
        if args.socket:
            net = SocketServer(server).start()
            try:
                host, port = net.address
                with SimulationClient(host, port) as client:
                    identical = stream_once(
                        "socket", client, server
                    ) and identical
            finally:
                net.close(drain=True)
    print(
        f"identity  : {'ok' if identical else 'MISMATCH'} "
        "(every feed report vs its slice of the session's solo "
        "concatenated packed run, every trial)",
        file=out,
    )
    if not identical:
        raise ReproError("streamed feed reports diverged from solo runs")
    return 0


def _parse_size_mix(spec, default_waves: int):
    """Parse a ``--size-mix`` spec into ``((waves, weight), ...)``."""
    from .serve import HEAVY_TAIL_SIZES

    if spec is None:
        return ((max(1, default_waves), 1.0),)
    if spec == "heavy-tail":
        return HEAVY_TAIL_SIZES
    mix = []
    for token in spec.split(","):
        waves_text, _, weight_text = token.partition(":")
        try:
            waves = int(waves_text)
            weight = float(weight_text) if weight_text else 1.0
        except ValueError as error:
            raise ReproError(
                f"bad --size-mix entry {token!r}: expected WAVES:WEIGHT "
                "pairs like '16:70,64:24,256:5,1024:1' or 'heavy-tail'"
            ) from error
        mix.append((waves, weight))
    return tuple(mix)


def _run_open_loop_bench(args: argparse.Namespace, out) -> int:
    """``serve-bench --open-loop``: seeded offered-rate SLO benchmark."""
    import json

    from .core.wavepipe import ClockingScheme, set_default_backend
    from .serve import (
        OpenLoopScenario,
        SimulationClient,
        SimulationServer,
        SocketServer,
        run_open_loop,
    )

    if args.no_jit:
        set_default_backend("fused")
    if args.faults is not None or args.oracle:
        # keep the surface honest instead of silently ignoring knobs
        raise ReproError(
            "--faults/--oracle are closed-loop options; the open "
            "loop is a measurement mode, one seeded pass per tier"
        )
    try:
        scenario = OpenLoopScenario(
            rate_rps=args.rate,
            n_requests=args.requests,
            arrival=args.arrival,
            burst=args.arrival_burst,
            seed=args.seed,
            size_mix=_parse_size_mix(args.size_mix, args.waves),
        )
    except ValueError as error:
        raise ReproError(str(error)) from error

    migs = [_load_source(token) for token in args.source.split(",")]
    netlists = [
        wave_pipeline(
            mig, fanout_limit=args.fanout_limit or None, verify=False
        ).netlist
        for mig in migs
    ]
    clocking = ClockingScheme(args.phases)
    models = (
        [netlists[index % len(netlists)] for index in range(args.requests)]
        if len(netlists) > 1 else None
    )
    for mig, netlist in zip(migs, netlists):
        print(f"benchmark : {mig.name}", file=out)
        print(f"netlist   : {netlist}", file=out)
    print(f"scenario  : {scenario.describe()}", file=out)

    knobs = {}
    if args.max_batch_requests is not None:
        knobs["max_batch_requests"] = args.max_batch_requests
    if args.max_batch_waves is not None:
        knobs["max_batch_waves"] = args.max_batch_waves
    if args.max_linger_steps is not None:
        knobs["max_linger_steps"] = args.max_linger_steps
    if args.dispatch_timeout is not None:
        knobs["dispatch_timeout_s"] = args.dispatch_timeout

    def one_tier(tier: str):
        """One seeded open-loop pass; returns the report."""
        with SimulationServer(
            shards=args.shards,
            process_shards=args.process_shards,
            max_pending=max(args.requests, 1024),
            clocking=clocking,
            warm_netlists=netlists,
            **knobs,
        ) as server:
            net = None
            client = None
            try:
                if tier == "socket":
                    net = SocketServer(server)
                    net.start()
                    host, port = net.address
                    client = SimulationClient(host, port)
                target = client if client is not None else server
                report = run_open_loop(
                    target,
                    None if models is not None else netlists[0],
                    scenario,
                    clocking=clocking,
                    deadline_s=args.deadline,
                    netlists=models,
                )
            finally:
                if client is not None:
                    client.close()
                if net is not None:
                    net.close(drain=True)
        entries = report.ledger()
        print(
            f"{tier:<10}: offered {report.offered_rate_rps:,.1f} rps, "
            f"achieved {report.achieved_rate_rps:,.1f} rps "
            f"({report.waves_per_s:,.0f} waves/s)",
            file=out,
        )
        p999 = report.p999_s
        print(
            f"latency   : p50 {report.p50_s * 1e3:.1f} ms, "
            f"p99 {report.p99_s * 1e3:.1f} ms, "
            f"p99.9 {p999 * 1e3:.1f} ms "
            "(from scheduled arrival — queueing included, no "
            "coordinated omission)",
            file=out,
        )
        print(
            f"ledger    : {entries['completed']} completed, "
            f"{entries['timed_out']} timed out, "
            f"{entries['expired']} expired, "
            f"{entries['rejected']} rejected, "
            f"{entries['shard_failed']} shard-failed "
            f"of {entries['offered']} offered",
            file=out,
        )
        if not report.ledger_balanced:
            raise ReproError(
                f"{tier} open-loop ledger does not balance: {entries}"
            )
        return report

    tiers = ["in-process"] + (["socket"] if args.socket else [])
    runs = [
        {"tier": tier, **one_tier(tier).as_dict()} for tier in tiers
    ]
    document = json.dumps(
        {"bench": "serve-open-loop", "runs": runs}, indent=2,
        sort_keys=True,
    )
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as sink:
            sink.write(document + "\n")
        print(f"slo-json  : {args.json_out}", file=out)
    else:
        print(document, file=out)
    print(
        f"replay    : repro serve-bench --open-loop {args.source} "
        f"--rate {args.rate:g} --requests {args.requests} "
        f"--arrival {args.arrival} --seed {args.seed}",
        file=out,
    )
    return 0


def _run_serve(args: argparse.Namespace, out) -> int:
    """``repro serve``: the network serving tier."""
    from .core.wavepipe import ClockingScheme, set_default_backend
    from .serve import SimulationServer, SocketServer

    if args.no_jit:
        set_default_backend("fused")
    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or port < 0:
        raise ReproError(
            f"--listen expects HOST:PORT, not {args.listen!r}"
        )

    warm = []
    if args.source:
        migs = [_load_source(token) for token in args.source.split(",")]
        warm = [
            wave_pipeline(
                mig, fanout_limit=args.fanout_limit or None, verify=False
            ).netlist
            for mig in migs
        ]
        for mig, netlist in zip(migs, warm):
            print(f"warm      : {mig.name} -> {netlist}", file=out)

    knobs = {}
    if args.max_pending is not None:
        knobs["max_pending"] = args.max_pending
    if args.deadline is not None:
        knobs["default_deadline_s"] = args.deadline
    if args.dispatch_timeout is not None:
        knobs["dispatch_timeout_s"] = args.dispatch_timeout
    server = SimulationServer(
        shards=args.shards,
        process_shards=args.process_shards,
        clocking=ClockingScheme(args.phases),
        warm_netlists=warm or None,
        **knobs,
    )
    net = SocketServer(server, host, port)
    try:
        net.start()
        bound_host, bound_port = net.address
        mode = (
            f"{args.process_shards} worker processes"
            if args.process_shards
            else f"{args.shards} shard threads"
        )
        print(f"listening : {bound_host}:{bound_port}", file=out)
        print(
            f"serving   : {mode}, {len(warm)} warm netlists "
            "(SIGTERM drains)",
            file=out,
        )
        out.flush()
        net.serve_forever(duration_s=args.duration)
    finally:
        net.close(drain=True)
        server.stop(drain=True)
    snapshot = server.metrics.snapshot()
    print(
        f"served    : {snapshot['completed']} completed, "
        f"{snapshot['expired']} expired, "
        f"{snapshot['rejected_queue_full']} rejected "
        f"({snapshot['batches']} batches)",
        file=out,
    )
    return 0


def _run_experiments(args: argparse.Namespace, out) -> int:
    from .experiments import ARTIFACTS, SuiteRunner

    which = args.which
    if "all" in which:
        which = list(ARTIFACTS)
    unknown = [name for name in which if name not in ARTIFACTS]
    if unknown:
        raise ReproError(
            f"unknown artifacts {unknown}; choose from {sorted(ARTIFACTS)}"
        )
    runner = SuiteRunner()
    print(
        f"suite: {len(runner.specs)} benchmarks "
        "(set REPRO_SUITE=full for all 37)",
        file=out,
    )
    for name in which:
        module = ARTIFACTS[name]
        started = time.perf_counter()
        result = module.run() if name == "table1" else module.run(runner)
        elapsed = time.perf_counter() - started
        print(f"\n=== {name} ({elapsed:.1f}s) ===", file=out)
        print(result.render(), file=out)
        if args.csv_dir is not None:
            csv_path = result.to_csv(args.csv_dir / f"{name}.csv")
            print(f"[csv] {csv_path}", file=out)
    return 0


def _run_suite(out) -> int:
    from .suite.table import SUITE

    print(f"{'name':<12} {'size':>7} {'depth':>6} {'PIs':>6} {'POs':>6}",
          file=out)
    for spec in SUITE:
        marker = " *" if spec.in_table2 else ""
        print(
            f"{spec.name:<12} {spec.size:>7} {spec.depth:>6} "
            f"{spec.n_pis:>6} {spec.n_pos:>6}{marker}",
            file=out,
        )
    print("(* appears in the paper's Table II)", file=out)
    return 0


def _run_techs(out) -> int:
    from .experiments import table1

    print(table1.run().render(), file=out)
    return 0


def _run_lint(args: argparse.Namespace, out) -> int:
    from .devtools import (
        render_json,
        render_sarif,
        render_text,
        run_lint,
        summarize,
    )

    findings = run_lint(
        args.paths, sanitizer_check=not args.no_self_check
    )
    if args.sarif:
        print(render_sarif(findings), file=out)
    elif args.json:
        print(render_json(findings), file=out)
    else:
        print(
            render_text(findings, show_suppressed=args.show_suppressed),
            file=out,
        )
    return 1 if summarize(findings)["unsuppressed"] else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout
    try:
        if args.command == "flow":
            return _run_flow(args, out)
        if args.command == "simulate":
            return _run_simulate(args, out)
        if args.command == "serve-bench":
            return _run_serve_bench(args, out)
        if args.command == "serve":
            return _run_serve(args, out)
        if args.command == "experiments":
            return _run_experiments(args, out)
        if args.command == "suite":
            return _run_suite(out)
        if args.command == "techs":
            return _run_techs(out)
        if args.command == "stats":
            from .analysis.graphs import profile_mig

            mig = _load_source(args.source)
            print(f"benchmark: {mig.name}", file=out)
            print(profile_mig(mig).render(), file=out)
            return 0
        if args.command == "lint":
            return _run_lint(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
