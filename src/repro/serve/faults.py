"""Deterministic, seeded fault injection for the serving tier.

The chaos tests of ISSUE 5 murdered workers at two hand-picked points;
this module replaces hand-picked with *systematic*: a :class:`FaultPlan`
compiled from a seed plus per-fault rates decides, at every dispatch,
whether that dispatch runs clean or suffers one of five named faults —
and the decision sequence is a pure function of the seed, so every chaos
failure is replayable as a reproducible test case (``repro serve-bench
--faults ... --fault-seed N`` prints the seed for exactly this reason).

Fault kinds (one decision per kind per dispatch, in priority order):

``crash_before_dispatch``
    The worker process is SIGKILLed by the parent *before* the batch is
    sent — the crash-between-batches case the pool discovers (and
    absorbs with a respawn) at its next dispatch.
``crash_mid_batch``
    The worker receives the batch and dies (``os._exit``) without
    replying — the mid-batch crash the retry/quarantine machinery must
    survive.
``pipe_eof``
    The worker closes its pipe cleanly and exits — the EOF-without-crash
    shutdown race.
``hang``
    The worker sleeps ``hang_s`` seconds before processing: with a
    dispatch timeout configured the parent detects the hang and reaps
    the worker; without one this is the wedged-worker scenario the
    timeout exists to prevent, so pair a nonzero ``hang`` rate with
    ``dispatch_timeout_s``.
``slow``
    The worker sleeps ``slow_s`` seconds, then serves the batch
    normally — latency jitter, not a failure.

Determinism
-----------
Each kind keeps its own visit counter, and the decision for visit *n* of
kind *k* is derived from ``(seed, k, n)`` alone — never from wall-clock,
thread identity, or cross-kind state.  Two plans built from the same
seed and rates therefore fire the same faults at the same per-kind visit
numbers even when shard threads interleave differently, which is what
makes a failing chaos seed replayable.

Poison batches
--------------
``FaultPlan(seed, poison={route_key, ...})`` marks specific route keys
as *poison*: every dispatch of those keys crashes its worker mid-batch,
deterministically — the reliable-killer batch the quarantine machinery
(:mod:`repro.serve.supervisor`) must contain without taking the server
down.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, fields
from typing import Collection, Dict, Optional, Tuple

from ..errors import ServeError

#: Fault kinds in decision priority order (first firing kind wins).
FAULT_KINDS: Tuple[str, ...] = (
    "crash_before_dispatch",
    "crash_mid_batch",
    "pipe_eof",
    "hang",
    "slow",
)

_KIND_INDEX = {kind: index for index, kind in enumerate(FAULT_KINDS)}

#: Wire directive names the worker loop understands (parent-side faults
#: have no directive).
_WIRE_NAME = {
    "crash_mid_batch": "crash",
    "pipe_eof": "eof",
    "hang": "hang",
    "slow": "slow",
}

#: CLI spec aliases (``FaultPlan.parse``) -> rate-field names.
_SPEC_ALIASES = {
    "crash": "crash_mid_batch",
    "crash-mid": "crash_mid_batch",
    "crash-pre": "crash_before_dispatch",
    "eof": "pipe_eof",
    "hang": "hang",
    "slow": "slow",
    "slow-s": "slow_s",
    "hang-s": "hang_s",
}


@dataclass(frozen=True)
class Fault:
    """One injected fault: the kind, and its delay where meaningful."""

    kind: str
    delay_s: float = 0.0

    def wire(self) -> Optional[Tuple[str, float]]:
        """Directive shipped to the worker (``None`` = parent-side)."""
        name = _WIRE_NAME.get(self.kind)
        return None if name is None else (name, self.delay_s)


@dataclass(frozen=True)
class FaultRates:
    """Per-dispatch firing probabilities (plus the two delay knobs)."""

    crash_before_dispatch: float = 0.0
    crash_mid_batch: float = 0.0
    pipe_eof: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    #: seconds a ``slow`` fault sleeps before serving the batch
    slow_s: float = 0.02
    #: seconds a ``hang`` fault sleeps; must exceed the dispatch timeout
    #: for the hang to be a hang (the parent reaps the worker mid-sleep)
    hang_s: float = 600.0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ServeError(
                    f"fault rate {kind}={rate!r} must be in [0, 1]"
                )
        if self.slow_s < 0 or self.hang_s < 0:
            raise ServeError("fault delays must be >= 0")

    def any_enabled(self) -> bool:
        """True when at least one kind can ever fire."""
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)


class FaultPlan:
    """Seeded fault schedule, consulted once per dispatch.

    Thread-safe: shard threads share one plan, and each kind's visit
    counter advances under the plan's lock.  The decision for a given
    (kind, visit) pair is a pure function of the seed — see the module
    docstring for the replayability contract.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[FaultRates] = None,
        *,
        poison: Collection[object] = (),
    ) -> None:
        self.seed = int(seed)
        self.rates = rates if rates is not None else FaultRates()
        self._poison = frozenset(poison)
        self._lock = threading.Lock()
        self._visits: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def _decision(self, kind: str, visit: int) -> float:
        """The [0, 1) draw of visit *visit* of *kind* — pure in the seed.

        A per-draw seeded PRNG keyed by integer mixing (no ``hash()``,
        which is process-seeded for strings) keeps the value independent
        of call interleaving across kinds and threads.
        """
        mix = (
            self.seed * 0x9E3779B1
            + _KIND_INDEX[kind] * 0x85EBCA77
            + visit * 0xC2B2AE35
        ) & 0xFFFFFFFF
        return random.Random(mix).random()

    def _delay(self, kind: str) -> float:
        if kind == "hang":
            return self.rates.hang_s
        if kind == "slow":
            return self.rates.slow_s
        return 0.0

    def next_fault(self, *, route_key: object = None) -> Optional[Fault]:
        """One dispatch's fault decision; ``None`` = dispatch runs clean.

        *route_key* (the sticky-routing key of the batch being
        dispatched) engages the poison set: a poison key crashes its
        worker mid-batch on every dispatch, rate configuration
        notwithstanding.
        """
        if route_key is not None and route_key in self._poison:
            with self._lock:
                self._injected["crash_mid_batch"] += 1
            return Fault("crash_mid_batch")
        with self._lock:
            for kind in FAULT_KINDS:
                rate = getattr(self.rates, kind)
                if rate <= 0.0:
                    continue
                visit = self._visits[kind]
                self._visits[kind] = visit + 1
                if self._decision(kind, visit) < rate:
                    self._injected[kind] += 1
                    return Fault(kind, self._delay(kind))
        return None

    def injected(self) -> Dict[str, int]:
        """Cumulative faults fired so far, per kind (a snapshot copy)."""
        with self._lock:
            return dict(self._injected)

    def describe(self) -> str:
        """One replayable line: the seed plus every nonzero rate."""
        parts = [f"seed={self.seed}"]
        parts.extend(
            f"{kind}={getattr(self.rates, kind):g}"
            for kind in FAULT_KINDS
            if getattr(self.rates, kind) > 0.0
        )
        if self.rates.slow > 0.0:
            parts.append(f"slow_s={self.rates.slow_s:g}")
        if self.rates.hang > 0.0:
            parts.append(f"hang_s={self.rates.hang_s:g}")
        if self._poison:
            parts.append(f"poison_keys={len(self._poison)}")
        return " ".join(parts)

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Build a plan from a CLI spec like ``'crash=0.1,hang=0.05'``.

        Accepted keys: ``crash``/``crash-mid`` (mid-batch crash),
        ``crash-pre`` (crash before dispatch), ``eof``, ``hang``,
        ``slow`` (rates in [0, 1]); ``slow-s``/``hang-s`` (delays, in
        seconds); ``seed`` (overrides the *seed* argument).  Full
        rate-field names are accepted too.
        """
        field_names = {field.name for field in fields(FaultRates)}
        values: Dict[str, float] = {}
        plan_seed = int(seed)
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ServeError(
                    f"bad fault spec token {token!r}: expected key=value"
                )
            raw_key, _, raw_value = token.partition("=")
            key = raw_key.strip().lower()
            try:
                value = float(raw_value)
            except ValueError:
                raise ServeError(
                    f"bad fault spec value {raw_value!r} for {key!r}"
                ) from None
            if key == "seed":
                plan_seed = int(value)
                continue
            name = _SPEC_ALIASES.get(key, key)
            if name not in field_names:
                known = ", ".join(sorted(_SPEC_ALIASES) + ["seed"])
                raise ServeError(
                    f"unknown fault spec key {raw_key!r}; choose from "
                    f"{known}"
                )
            values[name] = value
        return cls(plan_seed, FaultRates(**values))
