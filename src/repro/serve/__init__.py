"""Micro-batching serving layer over the packed wave-simulation engine.

Public surface:

* :class:`SimulationServer` — bounded request queue, per-netlist
  coalescing batcher, deadline-aware scheduling (``deadline_s`` /
  ``default_deadline_s`` / :class:`~repro.errors.DeadlineExceeded`),
  thread- or process-sharded dispatch, ``submit``/``Future`` plus an
  asyncio façade (see :mod:`repro.serve.server` for the architecture);
* :class:`ServerSession` — streaming sessions
  (``server.open_stream(netlist)``): ``feed(waves) -> Future`` against
  one persistent packed engine, sticky worker routing, crash recovery
  by bit-identical feed-log replay, per-session metrics, drain-aware
  close (mirrored over the wire by
  :meth:`SimulationClient.open_stream`);
* :class:`ProcessShardPool` — the worker-process pool behind
  ``SimulationServer(process_shards=N)`` (sticky netlist routing,
  per-worker compile caches, supervised respawn with backoff and
  crash-loop breakers, hang detection, poison-batch quarantine);
* :class:`FaultPlan` / :class:`FaultRates` / :class:`Fault` — the
  seeded, replayable fault-injection schedule
  (``SimulationServer(faults=...)``, ``repro serve-bench --faults``);
* :class:`SupervisorConfig` — retry-budget/backoff/breaker knobs of
  the worker supervision policy;
* :func:`graceful_drain` — SIGTERM => drain-then-stop context manager
  for serving processes;
* :class:`ServerMetrics` — batching/plan-cache/expiry/supervision
  counters (``server.metrics.snapshot()``; see also
  ``server.health()``);
* :func:`run_closed_loop` / :class:`LoadReport` — the closed-loop load
  generator behind ``repro serve-bench`` and
  ``benchmarks/bench_serving.py``;
* :func:`run_open_loop` / :class:`OpenLoopScenario` /
  :class:`OpenLoopReport` — the seeded open-loop generator (Poisson /
  uniform / bursty arrivals, heavy-tail size mixes, SLO-ledger JSON)
  behind ``repro serve-bench --open-loop``;
* :func:`run_streaming` / :class:`StreamingReport` — the streaming
  -session generator (concurrent ``open_stream`` sessions, per-feed
  latency, replay totals) behind ``repro serve-bench --stream`` and
  ``benchmarks/bench_streaming.py``;
* :class:`SocketServer` / :class:`SimulationClient` — the network
  serving tier (``repro serve --listen HOST:PORT``): length-prefixed
  framing over TCP, typed wire errors, per-client backpressure, drain
  -aware shutdown (see :mod:`repro.serve.net`);
* :class:`ClientSession` — streaming sessions over the wire
  (``client.open_stream(netlist)``), with session ids in the frame
  protocol and typed ``SessionClosed`` / ``ConnectionLost`` semantics;
* batching knobs re-exported from :mod:`repro.serve.batcher`.

Quick start (and see ``examples/serving.py`` for the walkthrough)::

    from repro.serve import SimulationServer

    with SimulationServer(shards=2) as server:
        future = server.submit(netlist, vectors)   # -> Future
        report = future.result()                   # bit-identical to a
                                                   #    solo simulate_waves
"""

from .batcher import (
    ADAPTIVE_WAVES_PER_LANE,
    DEFAULT_MAX_BATCH_REQUESTS,
    DEFAULT_MAX_BATCH_WAVES,
    Batch,
    Batcher,
    adaptive_max_batch_waves,
)
from .client import ClientSession, SimulationClient
from .faults import FAULT_KINDS, Fault, FaultPlan, FaultRates
from .loadgen import (
    ARRIVALS,
    HEAVY_TAIL_SIZES,
    REQUEST_TIMEOUT_S,
    LoadReport,
    OpenLoopReport,
    OpenLoopScenario,
    StreamingReport,
    run_closed_loop,
    run_open_loop,
    run_streaming,
)
from .metrics import ServerMetrics
from .net import SocketServer
from .queue import GroupKey, RequestQueue, SimulationRequest
from .server import (
    DEFAULT_LINGER_WAIT_S,
    DEFAULT_MAX_LINGER_STEPS,
    DEFAULT_MAX_PENDING,
    SESSION_REPLAY_BUDGET,
    ServerSession,
    SimulationServer,
    graceful_drain,
)
from .shards import ProcessShardPool
from .supervisor import SupervisorConfig, WorkerSupervisor

__all__ = [
    "ADAPTIVE_WAVES_PER_LANE",
    "ARRIVALS",
    "Batch",
    "Batcher",
    "ClientSession",
    "DEFAULT_LINGER_WAIT_S",
    "DEFAULT_MAX_BATCH_REQUESTS",
    "DEFAULT_MAX_BATCH_WAVES",
    "DEFAULT_MAX_LINGER_STEPS",
    "DEFAULT_MAX_PENDING",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultRates",
    "GroupKey",
    "HEAVY_TAIL_SIZES",
    "LoadReport",
    "OpenLoopReport",
    "OpenLoopScenario",
    "ProcessShardPool",
    "REQUEST_TIMEOUT_S",
    "RequestQueue",
    "SESSION_REPLAY_BUDGET",
    "ServerMetrics",
    "ServerSession",
    "SimulationClient",
    "SimulationRequest",
    "SimulationServer",
    "SocketServer",
    "StreamingReport",
    "SupervisorConfig",
    "WorkerSupervisor",
    "adaptive_max_batch_waves",
    "graceful_drain",
    "run_closed_loop",
    "run_open_loop",
    "run_streaming",
]
