"""Thread-safe counters of one :class:`~repro.serve.server.SimulationServer`.

The metrics answer the two operational questions of the serving layer:
*is batching happening* (``batches`` vs ``batched_requests``, the mean
batch size, the planner's words per batch) and *is the compiled plan
being reused* (``plan_cache_hits`` vs ``plan_cache_misses`` — one miss
per distinct netlist version, everything else hits; the process-wide
kernel-compile counters are additionally available through
:func:`repro.core.wavepipe.compile_cache_stats`).

Counters are updated from submitter threads and shard workers alike, so
every mutation takes the internal lock; :meth:`snapshot` returns a plain
dict so callers never observe a torn update.
"""

from __future__ import annotations

import threading


class ServerMetrics:
    """Monotonic counters, written by the server, read via :meth:`snapshot`."""

    _FIELDS = (
        "submitted",            # requests admitted into the queue
        "submitted_waves",      # total waves across admitted requests
        "rejected_queue_full",  # submissions refused by backpressure
        "completed",            # requests whose future got a report
        "failed",               # requests whose future got an exception
        "cancelled",            # requests cancelled before dispatch
        "expired",              # requests dropped past their deadline
        "shard_failed",         # requests failed by batch quarantine
        "worker_restarts",      # dead shard processes respawned
        "hung_workers",         # hung shard processes reaped by timeout
        "breaker_opens",        # crash-loop circuit breaker trips
        "batches",              # packed passes executed
        "batched_requests",     # requests across all executed batches
        "batched_waves",        # waves across all executed batches
        "batch_words",          # planner state words across all batches
        "max_batch_requests",   # largest batch observed (requests)
        "plan_cache_hits",      # submissions reusing a compiled plan
        "plan_cache_misses",    # submissions that compiled a new plan
        "sessions_opened",      # streaming sessions opened
        "sessions_closed",      # streaming sessions closed (any path)
        "session_feeds",        # feed() calls across all sessions
        "session_waves",        # waves across all session feeds
        "session_replays",      # feed-log replays after a worker loss
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {field: 0 for field in self._FIELDS}

    def record_submitted(self, n_requests: int, n_waves: int) -> None:
        """One admission burst: *n_requests* requests, *n_waves* waves."""
        with self._lock:
            self._counts["submitted"] += n_requests
            self._counts["submitted_waves"] += n_waves

    def record_rejected(self, n_requests: int = 1) -> None:
        """*n_requests* requests refused by queue-full backpressure.

        Counted per *request*, not per refused admission, so the counter
        agrees with :class:`~repro.serve.loadgen.LoadReport.rejected`
        (which records every request of a refused ``submit_many`` burst)
        and the offered-traffic ledger balances: a rejected burst of 32
        adds 32 here, exactly as it adds 32 rejected indices there.
        """
        with self._lock:
            self._counts["rejected_queue_full"] += n_requests

    def record_plan_cache(self, hit: bool) -> None:
        """One submission's compiled-plan lookup (hit = reused)."""
        with self._lock:
            key = "plan_cache_hits" if hit else "plan_cache_misses"
            self._counts[key] += 1

    def record_batch(
        self, n_requests: int, n_waves: int, n_words: int
    ) -> None:
        """One packed pass dispatched (sizes as the planner saw them)."""
        with self._lock:
            self._counts["batches"] += 1
            self._counts["batched_requests"] += n_requests
            self._counts["batched_waves"] += n_waves
            self._counts["batch_words"] += n_words
            if n_requests > self._counts["max_batch_requests"]:
                self._counts["max_batch_requests"] = n_requests

    def record_completed(self, n_requests: int) -> None:
        """*n_requests* futures resolved with reports."""
        with self._lock:
            self._counts["completed"] += n_requests

    def record_failed(self, n_requests: int) -> None:
        """*n_requests* futures resolved with an exception."""
        with self._lock:
            self._counts["failed"] += n_requests

    def record_cancelled(self, n_requests: int) -> None:
        """*n_requests* requests cancelled before their batch ran."""
        with self._lock:
            self._counts["cancelled"] += n_requests

    def record_expired(self, n_requests: int) -> None:
        """*n_requests* futures failed with ``DeadlineExceeded``.

        Expired requests never reach a kernel: they are dropped at
        batch-formation time, so they appear here and in ``failed``-like
        accounting *without* ever counting toward ``batched_requests``.
        """
        with self._lock:
            self._counts["expired"] += n_requests

    def record_shard_failed(self, n_requests: int) -> None:
        """*n_requests* futures failed with ``ShardFailed``.

        A subset of ``failed`` (the ledger invariant ``submitted ==
        completed + failed + cancelled + expired`` keeps holding), split
        out so quarantined poison batches are visible at a glance.
        """
        with self._lock:
            self._counts["shard_failed"] += n_requests

    def record_worker_restart(self) -> None:
        """One dead shard process was detected and respawned."""
        with self._lock:
            self._counts["worker_restarts"] += 1

    def record_hung_worker(self) -> None:
        """One hung shard process was reaped by the dispatch timeout."""
        with self._lock:
            self._counts["hung_workers"] += 1

    def record_breaker_open(self) -> None:
        """One worker slot's crash-loop circuit breaker tripped open."""
        with self._lock:
            self._counts["breaker_opens"] += 1

    def record_session_open(self) -> None:
        """One streaming session was opened."""
        with self._lock:
            self._counts["sessions_opened"] += 1

    def record_session_close(self) -> None:
        """One streaming session finished (drained or cancelled)."""
        with self._lock:
            self._counts["sessions_closed"] += 1

    def record_session_feed(self, n_waves: int) -> None:
        """One session feed of *n_waves* waves was accepted.

        Session traffic is ledgered separately from the batch-request
        counters on purpose: the ``submitted == completed + failed +
        cancelled + expired`` invariant of the request ledger stays
        exact with streaming traffic running alongside it.
        """
        with self._lock:
            self._counts["session_feeds"] += 1
            self._counts["session_waves"] += n_waves

    def record_session_replay(self) -> None:
        """One session replayed its feed log after losing its worker."""
        with self._lock:
            self._counts["session_replays"] += 1

    def snapshot(self) -> dict[str, float]:
        """Consistent copy of every counter plus derived ratios.

        Adds ``mean_batch_requests`` (coalescing factor actually
        achieved) and ``plan_cache_hit_rate`` — the two numbers the
        serve bench and the concurrency tests assert on.  (Counter
        values stay ints at runtime; the ``float`` value type covers
        the two derived ratios.)
        """
        with self._lock:
            counts: dict[str, float] = {**self._counts}
        batches = counts["batches"]
        counts["mean_batch_requests"] = (
            counts["batched_requests"] / batches if batches else 0.0
        )
        lookups = counts["plan_cache_hits"] + counts["plan_cache_misses"]
        counts["plan_cache_hit_rate"] = (
            counts["plan_cache_hits"] / lookups if lookups else 0.0
        )
        return counts
