"""Bounded, netlist-grouped request queue of the serving layer.

One :class:`RequestQueue` holds every request a
:class:`~repro.serve.server.SimulationServer` has admitted but not yet
dispatched.  Requests are grouped by :class:`GroupKey` — only requests
that can legally share one
:func:`~repro.core.wavepipe.batch.simulate_streams_packed` pass (same
netlist object at the same mutation version, same phase count, same
injection mode) land in the same group — and the groups are drained in
round-robin order so one hot netlist cannot starve the others.

The queue performs **no locking**: the server serializes every access
under its own condition variable (the queue is pure data structure, the
server is the only synchronization point of the serving layer).
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from ..errors import ServerQueueFull

#: One request's wave payload: nested bool rows, or the packed bool
#: block of the numpy wire format (taken by reference at admission).
WaveStream = Union[Sequence[Sequence[bool]], np.ndarray]


@dataclass(frozen=True)
class GroupKey:
    """Identity of one batchable request group.

    Two requests may be coalesced into one packed pass exactly when they
    agree on all four fields; the netlist is identified by object id *and*
    mutation version, so mutating a netlist between submissions starts a
    fresh group (and a fresh compiled plan) instead of mixing state
    layouts.
    """

    netlist_id: int
    version: int
    n_phases: int
    pipelined: bool


@dataclass
class SimulationRequest:
    """One admitted wave-simulation request and its completion future.

    The request holds a strong reference to its netlist (keeping the
    per-version compiled-plan cache entry alive while the request is in
    flight) and a snapshot of the submission time so closed-loop load
    generators can attribute queueing delay to the request's latency.
    ``deadline_at`` is an absolute :func:`time.perf_counter` instant (or
    ``None`` for no deadline): once it passes, the request must fail
    with :class:`~repro.errors.DeadlineExceeded` instead of being
    simulated.
    """

    netlist: WaveNetlist
    vectors: WaveStream
    clocking: ClockingScheme
    pipelined: bool
    future: Future
    key: GroupKey
    submitted_at: float = field(default_factory=time.perf_counter)
    deadline_at: Optional[float] = None

    @property
    def n_waves(self) -> int:
        """Stream length of this request, in waves."""
        return len(self.vectors)

    def expired(self, now: float) -> bool:
        """True once *now* has reached this request's deadline."""
        return self.deadline_at is not None and now >= self.deadline_at


class RequestQueue:
    """Per-netlist FIFO queues under one bounded pending budget.

    ``max_pending`` bounds the *total* number of queued requests across
    all groups — the server's backpressure limit; :meth:`push` raises
    :class:`~repro.errors.ServerQueueFull` past it.  :meth:`next_key`
    rotates through the groups (round-robin) so multi-netlist traffic
    shares the shards fairly.  Not thread-safe by design — see the module
    docstring.
    """

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = int(max_pending)
        self._groups: "OrderedDict[GroupKey, deque]" = OrderedDict()
        self._pending = 0
        #: queued requests carrying a deadline; keeps the expiry sweep
        #: and the earliest-deadline drain order O(1) no-ops for
        #: deadline-free traffic (the common case keeps PR-4 behaviour)
        self._deadlined = 0
        #: per-group share of ``_deadlined``: the EDF scan and the
        #: expiry sweep walk only groups with a positive count, so a
        #: deep deadline-free backlog costs nothing even while some
        #: other group carries deadlines.  The remaining per-deque
        #: scans are bounded by ``max_pending`` (backpressure is the
        #: design bound of everything under the server lock).
        self._group_deadlined: dict[GroupKey, int] = {}

    def __len__(self) -> int:
        return self._pending

    @property
    def n_groups(self) -> int:
        """Number of distinct netlist groups with pending requests."""
        return len(self._groups)

    def ensure_room(self, n_requests: int) -> None:
        """Raise :class:`ServerQueueFull` unless *n_requests* fit.

        The one copy of the backpressure check and its message: the
        server pre-checks whole bursts through this (all-or-nothing
        admission) and :meth:`push` re-checks per request.
        """
        if self._pending + n_requests > self.max_pending:
            raise ServerQueueFull(
                f"server queue is full ({self.max_pending} pending "
                "requests); drain some outstanding futures and retry"
            )

    def push(self, request: SimulationRequest) -> None:
        """Admit one request, or raise :class:`ServerQueueFull`."""
        self.ensure_room(1)
        group = self._groups.get(request.key)
        if group is None:
            group = self._groups[request.key] = deque()
        group.append(request)
        self._pending += 1
        if request.deadline_at is not None:
            self._deadlined += 1
            self._group_deadlined[request.key] = (
                self._group_deadlined.get(request.key, 0) + 1
            )

    def _forget_deadlines(
        self, key: GroupKey, requests: Sequence[SimulationRequest]
    ) -> None:
        """Unaccount removed *requests* of *key* from the counters."""
        removed = sum(
            1 for request in requests if request.deadline_at is not None
        )
        if not removed:
            return
        self._deadlined -= removed
        remaining = self._group_deadlined.get(key, 0) - removed
        if remaining > 0:
            self._group_deadlined[key] = remaining
        else:
            self._group_deadlined.pop(key, None)

    def group_deadline(self, key: GroupKey) -> Optional[float]:
        """Earliest deadline among *key*'s queued requests, if any.

        O(1) for groups without deadlines; only a group actually
        holding deadlined requests pays the deque scan.  Public because
        the server's deadline-aware linger asks it how long the forming
        batch may keep waiting for stragglers.
        """
        if not self._group_deadlined.get(key):
            return None
        group = self._groups.get(key)
        if group is None:
            return None
        return min(
            (
                request.deadline_at
                for request in group
                if request.deadline_at is not None
            ),
            default=None,
        )

    def next_key(self, skip: Iterable[GroupKey] = ()) -> Optional[GroupKey]:
        """The next group a shard should drain, or ``None``.

        Groups in *skip* (currently being simulated by another shard) are
        passed over.  Deadline-free traffic is served round-robin — the
        chosen group is rotated to the back so the next call prefers a
        different netlist and multi-netlist traffic shares the shards
        fairly.  As soon as any queued request carries a deadline, drains
        are ordered earliest-deadline-first (EDF): the group holding the
        most urgent request is served before deadline-free groups, which
        fall back to the round-robin rotation among themselves.
        """
        skip = set(skip)
        if self._deadlined:
            urgent: Optional[GroupKey] = None
            urgent_deadline = float("inf")
            # only groups actually holding deadlines are scanned
            for key in self._group_deadlined:
                if key in skip:
                    continue
                deadline = self.group_deadline(key)
                if deadline is not None and deadline < urgent_deadline:
                    urgent, urgent_deadline = key, deadline
            if urgent is not None:
                self._groups.move_to_end(urgent)
                return urgent
        for key in self._groups:
            if key not in skip:
                self._groups.move_to_end(key)
                return key
        return None

    def expire(
        self, now: float, key: Optional[GroupKey] = None
    ) -> list[SimulationRequest]:
        """Remove and return every queued request whose deadline passed.

        With *key* the sweep is restricted to that group (the linger
        path re-sweeps only the group it is topping up); without it all
        groups are swept.  Deadline-free queues return immediately —
        the ``_deadlined`` counter makes the common case free.  The
        caller (the server, outside its lock) fails the returned
        requests' futures with
        :class:`~repro.errors.DeadlineExceeded`.
        """
        if not self._deadlined:
            return []
        # only groups actually holding deadlines can have expiries
        keys = (
            (key,) if key is not None else tuple(self._group_deadlined)
        )
        expired: list[SimulationRequest] = []
        for group_key in keys:
            if not self._group_deadlined.get(group_key):
                continue
            group = self._groups.get(group_key)
            if group is None:
                continue
            kept: "deque[SimulationRequest]" = deque()
            newly_expired: list[SimulationRequest] = []
            for request in group:
                if request.expired(now):
                    newly_expired.append(request)
                else:
                    kept.append(request)
            if newly_expired:
                if kept:
                    # rebuild in place so the OrderedDict rotation
                    # (round-robin fairness) is left untouched
                    group.clear()
                    group.extend(kept)
                else:
                    del self._groups[group_key]
                self._forget_deadlines(group_key, newly_expired)
                expired.extend(newly_expired)
        self._pending -= len(expired)
        return expired

    def take(
        self,
        key: GroupKey,
        max_requests: int,
        max_waves: int,
        always_take_first: bool = True,
    ) -> list[SimulationRequest]:
        """Pop up to *max_requests* from *key*'s FIFO, bounded by waves.

        Requests are taken in arrival order while the running wave total
        stays within *max_waves*.  With *always_take_first* (batch
        seeding) the first request is taken even when it alone exceeds
        the wave budget — an oversized request must still be served, as
        its own batch; topping up an existing batch passes ``False`` so
        the budget is strict.
        """
        group = self._groups.get(key)
        if group is None:
            return []
        taken: list[SimulationRequest] = []
        waves = 0
        while group and len(taken) < max_requests:
            head = group[0]
            over_budget = waves + head.n_waves > max_waves
            if over_budget and (taken or not always_take_first):
                break
            taken.append(group.popleft())
            waves += head.n_waves
        if not group:
            del self._groups[key]
        self._pending -= len(taken)
        self._forget_deadlines(key, taken)
        return taken

    def drain(self) -> list[SimulationRequest]:
        """Pop every pending request (used to cancel on shutdown)."""
        drained = [
            request for group in self._groups.values() for request in group
        ]
        self._groups.clear()
        self._pending = 0
        self._deadlined = 0
        self._group_deadlined.clear()
        return drained
