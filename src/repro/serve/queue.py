"""Bounded, netlist-grouped request queue of the serving layer.

One :class:`RequestQueue` holds every request a
:class:`~repro.serve.server.SimulationServer` has admitted but not yet
dispatched.  Requests are grouped by :class:`GroupKey` — only requests
that can legally share one
:func:`~repro.core.wavepipe.batch.simulate_streams_packed` pass (same
netlist object at the same mutation version, same phase count, same
injection mode) land in the same group — and the groups are drained in
round-robin order so one hot netlist cannot starve the others.

The queue performs **no locking**: the server serializes every access
under its own condition variable (the queue is pure data structure, the
server is the only synchronization point of the serving layer).
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.wavepipe.clocking import ClockingScheme
from ..errors import ServerQueueFull


@dataclass(frozen=True)
class GroupKey:
    """Identity of one batchable request group.

    Two requests may be coalesced into one packed pass exactly when they
    agree on all four fields; the netlist is identified by object id *and*
    mutation version, so mutating a netlist between submissions starts a
    fresh group (and a fresh compiled plan) instead of mixing state
    layouts.
    """

    netlist_id: int
    version: int
    n_phases: int
    pipelined: bool


@dataclass
class SimulationRequest:
    """One admitted wave-simulation request and its completion future.

    The request holds a strong reference to its netlist (keeping the
    per-version compiled-plan cache entry alive while the request is in
    flight) and a snapshot of the submission time so closed-loop load
    generators can attribute queueing delay to the request's latency.
    """

    netlist: object  # WaveNetlist
    vectors: Sequence[Sequence[bool]]
    clocking: ClockingScheme
    pipelined: bool
    future: Future
    key: GroupKey
    submitted_at: float = field(default_factory=time.perf_counter)

    @property
    def n_waves(self) -> int:
        """Stream length of this request, in waves."""
        return len(self.vectors)


class RequestQueue:
    """Per-netlist FIFO queues under one bounded pending budget.

    ``max_pending`` bounds the *total* number of queued requests across
    all groups — the server's backpressure limit; :meth:`push` raises
    :class:`~repro.errors.ServerQueueFull` past it.  :meth:`next_key`
    rotates through the groups (round-robin) so multi-netlist traffic
    shares the shards fairly.  Not thread-safe by design — see the module
    docstring.
    """

    def __init__(self, max_pending: int):
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = int(max_pending)
        self._groups: "OrderedDict[GroupKey, deque]" = OrderedDict()
        self._pending = 0

    def __len__(self) -> int:
        return self._pending

    @property
    def n_groups(self) -> int:
        """Number of distinct netlist groups with pending requests."""
        return len(self._groups)

    def ensure_room(self, n_requests: int) -> None:
        """Raise :class:`ServerQueueFull` unless *n_requests* fit.

        The one copy of the backpressure check and its message: the
        server pre-checks whole bursts through this (all-or-nothing
        admission) and :meth:`push` re-checks per request.
        """
        if self._pending + n_requests > self.max_pending:
            raise ServerQueueFull(
                f"server queue is full ({self.max_pending} pending "
                "requests); drain some outstanding futures and retry"
            )

    def push(self, request: SimulationRequest) -> None:
        """Admit one request, or raise :class:`ServerQueueFull`."""
        self.ensure_room(1)
        group = self._groups.get(request.key)
        if group is None:
            group = self._groups[request.key] = deque()
        group.append(request)
        self._pending += 1

    def next_key(self, skip: Iterable[GroupKey] = ()) -> Optional[GroupKey]:
        """Round-robin: the next group with pending work, or ``None``.

        Groups in *skip* (currently being simulated by another shard) are
        passed over.  The chosen group is rotated to the back so the next
        call prefers a different netlist — multi-netlist traffic is
        served fairly instead of by arrival order.
        """
        skip = set(skip)
        for key in self._groups:
            if key not in skip:
                self._groups.move_to_end(key)
                return key
        return None

    def take(
        self,
        key: GroupKey,
        max_requests: int,
        max_waves: int,
        always_take_first: bool = True,
    ) -> list[SimulationRequest]:
        """Pop up to *max_requests* from *key*'s FIFO, bounded by waves.

        Requests are taken in arrival order while the running wave total
        stays within *max_waves*.  With *always_take_first* (batch
        seeding) the first request is taken even when it alone exceeds
        the wave budget — an oversized request must still be served, as
        its own batch; topping up an existing batch passes ``False`` so
        the budget is strict.
        """
        group = self._groups.get(key)
        if group is None:
            return []
        taken: list[SimulationRequest] = []
        waves = 0
        while group and len(taken) < max_requests:
            head = group[0]
            over_budget = waves + head.n_waves > max_waves
            if over_budget and (taken or not always_take_first):
                break
            taken.append(group.popleft())
            waves += head.n_waves
        if not group:
            del self._groups[key]
        self._pending -= len(taken)
        return taken

    def drain(self) -> list[SimulationRequest]:
        """Pop every pending request (used to cancel on shutdown)."""
        drained = [
            request for group in self._groups.values() for request in group
        ]
        self._groups.clear()
        self._pending = 0
        return drained
