"""Process-level sharding: netlist groups routed to worker processes.

The PR-4 server is *thread*-sharded: independent netlist groups overlap
only where the packed kernels release the GIL inside numpy.  That covers
the ufunc-heavy step loop, but batching, packing, report slicing, and
every piece of Python glue still serialize on one core.
:class:`ProcessShardPool` removes that ceiling: each shard is a separate
OS process with its own interpreter, GIL, and
:func:`~repro.core.wavepipe.kernels.compile_netlist` cache.

Design
------
* **Wire format.**  The serve package is transport-agnostic by design —
  a request's payload is one ``(waves, inputs)`` bool block (or an empty
  list), exactly what :func:`~repro.core.wavepipe.batch.
  simulate_streams_packed` consumes.  Dispatching a batch to a worker
  sends that same representation over a :class:`multiprocessing.Pipe`
  (numpy arrays pickle to flat buffers); the reply is the list of
  :class:`~repro.core.wavepipe.simulator.WaveSimulationReport` objects,
  bit-identical to an in-process run because the kernels are
  deterministic.
* **Sticky routing.**  A netlist group is always routed to the same
  worker (``hash(route key) % n_workers``), so each worker compiles a
  netlist at most once per version: the netlist itself is shipped only
  on the worker's first batch for that ``(id, version)`` — later batches
  send the key alone and hit the worker-side cache (a small LRU).
* **Supervised crash recovery.**  A worker that dies under a batch
  (OOM killer, segfault, ``kill -9``, injected chaos) surfaces as a
  broken pipe or a silent exit; one that *hangs* is detected by the
  bounded ``Connection.poll`` dispatch loop (``dispatch_timeout_s``)
  and SIGKILL-reaped.  Either way the slot is respawned under the
  :class:`~repro.serve.supervisor.WorkerSupervisor` policy — exponential
  backoff per consecutive failure, a crash-loop circuit breaker that
  takes a flapping slot out of rotation (sticky groups are rerouted to
  the next healthy slot until a half-open probe succeeds) — and the
  batch is retried, bit-identically, up to its retry budget.  A batch
  that exhausts the budget is **quarantined**: only its futures fail,
  with :class:`~repro.errors.ShardFailed`, and the pool keeps serving
  (the batch itself is the likely killer).  Restarts are reported
  through the ``on_restart`` callback, hangs through ``on_hang``,
  breaker trips through ``on_breaker_open`` (the server counts all
  three in its metrics); :meth:`ProcessShardPool.health` snapshots the
  per-slot state.
* **Deterministic chaos.**  A :class:`~repro.serve.faults.FaultPlan`
  threads seeded fault decisions through the dispatch path: the parent
  kills its own worker (``crash_before_dispatch``) or ships an in-band
  directive the worker executes (``crash``/``eof``/``hang``/``slow``) —
  so the whole supervision surface above is exercised reproducibly, by
  seed, in the chaos suite and ``repro serve-bench --faults``.
* **Spawn, not fork.**  Workers use the ``spawn`` start method: the
  parent runs shard *threads*, and forking a threaded process can
  deadlock on arbitrarily-held locks.  Spawned children import
  :mod:`repro` fresh, which is exactly the per-process compile cache the
  routing exploits.

The pool is usable on its own (``pool.simulate(...)`` is a synchronous
call, safe from concurrent threads — per-worker pipes are locked), but
its intended seat is ``SimulationServer(process_shards=N)``, where each
shard thread drives one worker process and the batcher/deadline logic
stays in the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from types import TracebackType
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..core.wavepipe.components import WaveNetlist
from ..errors import ServeError, ShardFailed
from .faults import FaultPlan
from .queue import WaveStream
from .supervisor import SupervisorConfig, WorkerSupervisor

#: Worker-side cap on cached netlists (serving netlist churn must not
#: grow a worker without bound; eviction only costs a re-ship).
WORKER_NETLIST_CACHE = 32

#: Seconds a graceful worker shutdown may take before escalating to
#: terminate()/kill().
DEFAULT_STOP_TIMEOUT_S = 10.0

#: Poll granularity of the bounded dispatch-reply loop: every reply wait
#: is a sequence of short ``Connection.poll`` ticks (never an indefinite
#: ``recv``), so worker death without EOF and dispatch-timeout expiry
#: are both detected within one tick.
POLL_TICK_S = 0.05


def _worker_main(conn: Connection) -> None:  # pragma: no cover - runs in a child
    """Loop of one shard process: receive batches, simulate, reply.

    (Excluded from coverage measurement: this body runs in spawned
    child processes, outside the parent's coverage tracer.)
    """
    # imported here so the spawn-time module import stays cheap and the
    # child resolves its *own* kernel backend (numba may differ)
    from ..core.wavepipe.batch import (
        open_packed_session,
        simulate_streams_packed,
    )
    from ..core.wavepipe.clocking import ClockingScheme
    from ..core.wavepipe.kernels import compile_netlist

    netlists: "OrderedDict[tuple, object]" = OrderedDict()
    sessions: dict = {}  # session id -> PackedSession (worker-side state)

    def _send_reply(reply: tuple) -> bool:
        try:
            conn.send(reply)
            return True
        except OSError:
            return False  # pipe gone: the parent is closing or died
        except Exception:
            # unpicklable payload (pickle.PicklingError, or any other
            # serialization failure an exotic exception object can
            # produce): degrade to a picklable description rather than
            # killing the worker and losing the error entirely
            try:
                conn.send(
                    ("error", ServeError(f"worker error: {reply[1]!r}"))
                )
                return True
            except OSError:
                return False

    def _run_fault(fault: object) -> None:
        # injected chaos (see serve/faults.py): executed worker-side so
        # the failure is indistinguishable from the real thing
        if fault is None:
            return
        name, delay = fault  # type: ignore[misc]
        if name == "crash":
            os._exit(13)  # mid-batch death: no reply, no cleanup
        if name == "eof":
            conn.close()  # clean pipe EOF without a reply
            os._exit(0)
        if name in ("hang", "slow"):
            # a hang is a slow whose delay outlives the dispatch
            # timeout: the parent reaps us mid-sleep
            time.sleep(float(delay))

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing sane left to do
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "ping":
            conn.send(("pong", os.getpid()))
            continue
        if kind == "warm":
            # ("warm", key, netlist, n_phases): cache the netlist and
            # pre-compile its plan so the first real batch after a
            # (re)spawn skips the compile miss.  Reply-less by design —
            # warming happens while the parent carries on — and
            # best-effort: a netlist that cannot compile simply fails
            # later, at dispatch, with the engine's own typed error
            _, key, netlist, n_phases = message
            netlists[key] = netlist
            netlists.move_to_end(key)
            while len(netlists) > WORKER_NETLIST_CACHE:
                netlists.popitem(last=False)
            try:
                compile_netlist(netlist, ClockingScheme(n_phases))
            except Exception:
                pass
            continue
        reply: tuple[str, object]
        if kind == "s_open":
            # ("s_open", sid, netlist, n_phases, pipelined, backend,
            #  track): create (or recreate, for a feed-log replay) the
            # worker-side engine session.  The netlist is always shipped
            # — sessions are long-lived, so the one-time pickle cost is
            # amortized across every feed that follows.
            _, sid, netlist, n_phases, pipelined, backend, track = message
            try:
                stale = sessions.pop(sid, None)
                if stale is not None:
                    stale.discard()  # replay: throw away poisoned state
                sessions[sid] = open_packed_session(
                    netlist,
                    clocking=ClockingScheme(n_phases),
                    pipelined=pipelined,
                    backend=backend,
                    track=track,
                    validate=False,  # validated in the parent at open time
                )
                reply = ("ok", None)
            except BaseException as error:
                reply = ("error", error)
            if not _send_reply(reply):
                return
            continue
        if kind == "s_feed":
            # ("s_feed", sid, block, flush, fault) -> ("ok", [(feed
            # index, report), ...]) listing every feed that *newly*
            # resolved, or ("s_lost", sid) when this worker has no such
            # session (a respawn ate the state): the parent replays the
            # session's feed log.
            _, sid, block, flush, fault = message
            _run_fault(fault)
            session = sessions.get(sid)
            if session is None:
                if not _send_reply(("s_lost", sid)):
                    return
                continue
            try:
                session.feed(block)
                if flush:
                    session.flush()
                    done = session.take_done()
                else:
                    # pump() consumes the take_done cursor itself
                    done = session.pump()
                reply = ("ok", [(h.index, h.report) for h in done])
            except BaseException as error:
                reply = ("error", error)
            if not _send_reply(reply):
                return
            continue
        if kind == "s_close":
            # ("s_close", sid, drain): drain resolves every remaining
            # feed (reply lists them); an undrained close just drops the
            # state.  An unknown sid is only a problem when draining —
            # the parent must replay to reconstruct the reports.
            _, sid, drain = message
            session = sessions.pop(sid, None)
            if session is None:
                reply = ("s_lost", sid) if drain else ("ok", [])
            else:
                try:
                    if drain:
                        session.close()
                        done = session.take_done()
                        reply = ("ok", [(h.index, h.report) for h in done])
                    else:
                        session.discard()
                        reply = ("ok", [])
                except BaseException as error:
                    reply = ("error", error)
            if not _send_reply(reply):
                return
            continue
        # ("run", key, netlist | None, n_phases, pipelined, streams,
        #  backend, track, fault)
        (
            _,
            key,
            netlist,
            n_phases,
            pipelined,
            streams,
            backend,
            track,
            fault,
        ) = message
        _run_fault(fault)
        try:
            if netlist is not None:
                netlists[key] = netlist
                netlists.move_to_end(key)  # re-ship of an old key
                while len(netlists) > WORKER_NETLIST_CACHE:
                    netlists.popitem(last=False)
            cached = netlists.get(key)
            if cached is None:
                # cache desync (e.g. this side evicted the key while
                # the parent still advertises it): ask for a re-ship
                # instead of failing the batch
                conn.send(("miss", key))
                continue
            netlists.move_to_end(key)  # LRU hit
            reports = simulate_streams_packed(
                cached,
                streams,
                clocking=ClockingScheme(n_phases),
                pipelined=pipelined,
                strict=False,
                backend=backend,
                track=track,
                validate=False,  # validated in the parent at submit time
            )
            reply = ("ok", reports)
        except BaseException as error:
            reply = ("error", error)
        if not _send_reply(reply):
            return


@dataclass
class _Worker:
    """Parent-side handle of one shard process."""

    process: BaseProcess
    conn: Connection
    # the lambda (rather than `threading.Lock` itself) resolves the
    # module's `threading` binding at *instantiation* time, so the
    # REPRO_SANITIZE=1 lock sanitizer instruments worker locks too
    lock: threading.Lock = field(
        default_factory=lambda: threading.Lock()
    )
    #: (netlist id, version) -> netlist: the keys this worker is known
    #: to have cached, holding a *strong* netlist reference.  The pin
    #: matters for correctness, not just speed: the key contains
    #: ``id(netlist)``, and only the pinned reference guarantees that
    #: id cannot be recycled by a different netlist while the worker
    #: still holds the old one under that key.  Bounded like the
    #: worker-side cache; reset on respawn (a fresh process has a
    #: fresh cache).  Desync in either direction is harmless — the
    #: worker answers ``miss`` and the batch is re-shipped.
    known: "OrderedDict[tuple, object]" = field(
        default_factory=OrderedDict
    )


class _AttemptFailed(Exception):
    """Internal: one dispatch attempt lost its worker (crash/hang/EOF)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _SlotUnavailable(Exception):
    """Internal: the chosen slot broke before the batch was dispatched."""


class SessionWorkerLost(Exception):
    """A streaming session's worker — and its engine state — was lost.

    Raised by :meth:`ProcessShardPool.session_feed` /
    :meth:`~ProcessShardPool.session_close` after the slot has been
    respawned and accounted under supervision.  Deliberately *not* a
    :class:`~repro.errors.ServeError`: it never reaches users.  The
    serving layer catches it, re-opens the worker-side session, and
    replays the session's feed log from scratch — bit-identical to the
    uninterrupted run because the packed kernels are deterministic.
    """

    def __init__(self, slot: int, reason: str) -> None:
        super().__init__(f"slot {slot}: {reason}")
        self.slot = slot
        self.reason = reason


def _wire_streams(
    streams: Sequence[WaveStream],
) -> list:
    """Payloads in the numpy wire format: one bool block per stream.

    ndarray payloads pass through untouched; list payloads are packed
    into ``(waves, inputs)`` bool blocks (pickling a flat buffer beats
    pickling nested lists of Python bools several-fold).  Empty streams
    stay the empty list — their report is synthesized without touching
    the kernels on either side.
    """
    wire: list[object] = []
    for vectors in streams:
        if isinstance(vectors, np.ndarray) or len(vectors) == 0:
            wire.append(vectors if len(vectors) else [])
        else:
            wire.append(np.asarray(vectors, dtype=bool))
    return wire


class ProcessShardPool:
    """Fixed pool of simulation worker processes with sticky routing.

    Parameters
    ----------
    n_workers:
        Shard processes to spawn (eagerly, so routing and the chaos
        tests see live pids immediately).
    on_restart:
        Optional zero-argument callback invoked once per dead-worker
        respawn (the server wires its ``worker_restarts`` metric here).
    on_hang:
        Optional callback invoked once per hung worker detected and
        reaped by the dispatch timeout.
    on_breaker_open:
        Optional callback invoked once per crash-loop circuit breaker
        trip.
    dispatch_timeout_s:
        Upper bound on one dispatch's reply wait.  A worker that has
        neither replied nor died within it is *hung*: it is SIGKILLed,
        the hang counts as a slot failure, and the batch retries under
        its budget.  ``None`` (default) disables hang detection — the
        reply wait is still a bounded poll loop (worker death without
        EOF is detected within :data:`POLL_TICK_S`), it just never
        gives up on a live worker.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` — the seeded
        chaos schedule consulted once per dispatch attempt.
    supervision:
        :class:`~repro.serve.supervisor.SupervisorConfig` overriding the
        default backoff/breaker/retry-budget policy.
    warm_netlists:
        Netlists every worker is told about *at spawn* — each is
        shipped (and its plan pre-compiled, worker-side, reply-less)
        before the first batch, so a freshly spawned **or respawned**
        worker never pays the compile miss on its first dispatch.
        Bounded by the worker cache size: only the last
        :data:`WORKER_NETLIST_CACHE` entries are kept.
    warm_n_phases:
        Clocking phase count the warm pre-compile targets (matches the
        dispatch-time ``n_phases`` for the warm plans to be the ones
        reused).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        on_restart: Optional[Callable[[], None]] = None,
        on_hang: Optional[Callable[[], None]] = None,
        on_breaker_open: Optional[Callable[[], None]] = None,
        dispatch_timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        supervision: Optional[SupervisorConfig] = None,
        warm_netlists: Optional[Sequence[WaveNetlist]] = None,
        warm_n_phases: int = 3,
    ) -> None:
        if n_workers < 1:
            raise ServeError("a process pool needs at least one worker")
        if dispatch_timeout_s is not None and dispatch_timeout_s <= 0:
            raise ServeError("dispatch_timeout_s must be > 0")
        self._ctx = multiprocessing.get_context("spawn")
        self._on_restart = on_restart
        self._on_hang = on_hang
        self._on_breaker_open = on_breaker_open
        self._dispatch_timeout_s = dispatch_timeout_s
        self._faults = faults
        self._supervisor = WorkerSupervisor(int(n_workers), supervision)
        # (dispatch key, pinned netlist, phases) shipped on every spawn;
        # the pinned reference keeps id(netlist) — part of the key —
        # unrecycled for the pool's lifetime, mirroring _Worker.known
        self._warm: "list[tuple[tuple, WaveNetlist, int]]" = [
            ((id(netlist), netlist.version), netlist, int(warm_n_phases))
            for netlist in (warm_netlists or [])
        ][-WORKER_NETLIST_CACHE:]
        self._closed = False
        self._state_lock = threading.Lock()
        self._workers: list[_Worker] = [
            self._spawn() for _ in range(int(n_workers))
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                name="repro-serve-worker",
                daemon=True,
            )
            process.start()
        except BaseException:
            # a failed spawn (fork/exec error, interpreter shutdown)
            # must not leak the pipe pair
            parent_conn.close()
            child_conn.close()
            raise
        try:
            child_conn.close()  # the child holds its own copy
        except BaseException:
            # close failing leaves a started worker nobody owns yet:
            # reap it before propagating
            process.terminate()
            parent_conn.close()
            raise
        worker = _Worker(process=process, conn=parent_conn)
        # warm pre-compile: pipe messages are FIFO, so by the time any
        # batch reaches this worker the warm netlists are cached (and,
        # compile being serialized worker-side, their plans built) —
        # respawned slots re-warm automatically because every spawn
        # goes through here.  known is pre-populated so the parent
        # skips the re-ship on the first dispatch too
        for key, netlist, n_phases in self._warm:
            try:
                worker.conn.send(("warm", key, netlist, n_phases))
            except (OSError, ValueError):  # pragma: no cover - spawn race
                break  # a worker this broken fails at dispatch, typed
            worker.known[key] = netlist
            worker.known.move_to_end(key)
        return worker

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> list[int]:
        """Live worker pids (the chaos tests' kill targets)."""
        return [
            worker.process.pid
            for worker in self._workers
            if worker.process.is_alive() and worker.process.pid is not None
        ]

    def health(self) -> dict[str, object]:
        """Supervision snapshot: per-slot state plus pool-wide counters.

        Each worker entry carries the slot index, pid, liveness, the
        supervisor's state machine (``healthy`` / ``broken`` /
        ``probe-ready`` / ``probing``), restart and consecutive-failure
        counts, and the breaker status; the top level adds the
        cumulative ``hung_reaped`` / ``quarantined_batches`` /
        ``breaker_opens`` / ``worker_restarts`` totals.
        """
        now = time.monotonic()
        states = self._supervisor.slot_states(now)
        workers: list[dict[str, object]] = []
        for index, state in enumerate(states):
            worker = self._workers[index]
            entry: dict[str, object] = {
                "slot": index,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
            }
            entry.update(state)
            workers.append(entry)
        snapshot: dict[str, object] = {"workers": workers}
        snapshot.update(self._supervisor.totals())
        return snapshot

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop every worker: graceful stop, then terminate, then kill.

        *timeout* is one **shared deadline budget** across the whole
        pool, not a per-worker join allowance: with N slow workers total
        graceful shutdown is still bounded by ~*timeout* (plus the short
        fixed terminate/kill escalation grace), never N x *timeout*.
        """
        timeout = DEFAULT_STOP_TIMEOUT_S if timeout is None else timeout
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            # the per-worker lock serializes this stop frame against a
            # simulate() mid-send from another thread (interleaving two
            # writers would corrupt the pipe stream); holding it means
            # graceful close waits for the in-flight batch, which is
            # the drain semantics close promises
            with worker.lock:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass  # already dead or pipe gone: terminate below
        deadline_at = time.monotonic() + max(0.0, float(timeout))
        for worker in self._workers:
            worker.process.join(
                max(0.0, deadline_at - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def kill(self) -> None:
        """Hard teardown: SIGKILL every worker, close pipes, **no locks**.

        The deadlock-guard path of ``SimulationServer.close`` calls
        this when a shard thread failed to stop: that thread may be
        blocked mid-conversation still *holding its worker's dispatch
        lock*, so the graceful :meth:`close` (which takes every worker
        lock to drain in-flight batches) could hang behind it forever.
        Killing without the locks is safe here — the workers are being
        discarded, not drained, and a SIGKILL'd child cannot corrupt
        parent state.  Idempotent, and safe to call after
        :meth:`close`.
        """
        with self._state_lock:
            self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _worker_for(self, route_key: object) -> int:
        # lint: determinism-hash-ok(sticky routing only needs within-process consistency; the hash never crosses a run or a process)
        return hash(route_key) % len(self._workers)

    def _reap_slot(self, index: int) -> None:
        """Tear the slot's process and pipe down (it is being replaced)."""
        old = self._workers[index]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(1.0)

    def _respawn_slot(self, index: int) -> _Worker:
        """Spawn a fresh worker into *index* (caller holds its lock slot)."""
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        old = self._workers[index]
        fresh = self._spawn()
        # carry the in-flight dispatch lock over: the caller already
        # holds old.lock, and per-index serialization must continue to
        # funnel through that same lock object
        fresh.lock = old.lock
        self._workers[index] = fresh
        if self._on_restart is not None:
            self._on_restart()
        return fresh

    def _revive(self, index: int) -> _Worker:
        """Replace a worker found dead *at dispatch* (crash-between-
        batches discovery): the death counts toward the slot's failure
        streak and backoff, but not toward any batch's retry budget —
        no batch was in flight when it died.  Raises
        :class:`_SlotUnavailable` when the streak opens the breaker
        (the caller reroutes instead of respawning a crash-looper).
        """
        if self._supervisor.breaker_open(index):
            # a breaker-open slot is deliberately left dead, so finding
            # its worker dead during the half-open probe is expected —
            # respawn without charging a failure; the probe's verdict
            # is the dispatch that follows
            self._reap_slot(index)
            return self._respawn_slot(index)
        backoff_s, opened = self._supervisor.record_failure(
            index, time.monotonic()
        )
        self._reap_slot(index)
        if opened:
            if self._on_breaker_open is not None:
                self._on_breaker_open()
            raise _SlotUnavailable(f"slot {index} breaker opened")
        if backoff_s > 0.0:
            time.sleep(backoff_s)
        return self._respawn_slot(index)

    def _fail_slot(self, index: int, reason: str) -> None:
        """Handle a slot failure *under a batch*: respawn or break.

        Accounts the failure with the supervisor, then either respawns
        the slot after its exponential backoff or — when the streak
        opens the circuit breaker — leaves it dead for routing to skip.
        Either way the caller's batch retries (within its budget) via
        a fresh :meth:`_attempt`.
        """
        backoff_s, opened = self._supervisor.record_failure(
            index, time.monotonic()
        )
        self._reap_slot(index)
        if opened:
            if self._on_breaker_open is not None:
                self._on_breaker_open()
            return
        if backoff_s > 0.0:
            time.sleep(backoff_s)
        try:
            self._respawn_slot(index)
        except ServeError:
            # pool closed mid-recovery: leave the slot dead; the retry
            # loop will observe the closed pool and fail the batch
            pass

    def _receive(self, index: int, worker: _Worker) -> Tuple[str, object]:
        """Await one reply via bounded polls; never an indefinite recv.

        Detects, within one :data:`POLL_TICK_S` tick: a reply (returned),
        worker death without EOF (``_AttemptFailed``), pipe EOF/reset
        (``_AttemptFailed``), and — when ``dispatch_timeout_s`` is set —
        a hung worker, which is SIGKILL-reaped before the attempt fails.
        """
        timeout_s = self._dispatch_timeout_s
        deadline_at = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            tick = POLL_TICK_S
            if deadline_at is not None:
                remaining = deadline_at - time.monotonic()
                if remaining <= 0.0:
                    # hung: neither a reply nor a death within the
                    # dispatch timeout — reap it so the slot (and the
                    # batch) can move on
                    worker.process.kill()
                    worker.process.join(1.0)
                    self._supervisor.note_hang_reaped()
                    if self._on_hang is not None:
                        self._on_hang()
                    raise _AttemptFailed(
                        f"worker hung past the {timeout_s:.3f}s "
                        "dispatch timeout and was killed"
                    )
                tick = min(tick, max(0.0, remaining))
            try:
                if worker.conn.poll(tick):
                    return worker.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError,
                    OSError):
                raise _AttemptFailed(
                    "worker pipe closed under the batch"
                ) from None
            if not worker.process.is_alive() and not worker.conn.poll(0):
                # dead with no reply left in the pipe buffer
                raise _AttemptFailed("worker died under the batch")

    def _attempt(
        self,
        index: int,
        key: tuple,
        netlist: WaveNetlist,
        wire: list,
        n_phases: int,
        pipelined: bool,
        backend: Optional[str],
        track: Optional[bool],
        route: object,
    ) -> list:
        """One dispatch attempt on slot *index* (its lock is held).

        Raises :class:`_SlotUnavailable` if the slot broke before the
        batch was sent, :class:`_AttemptFailed` if the worker was lost
        under the batch; worker-side simulation errors re-raise as the
        in-process engine would have raised them.
        """
        worker = self._workers[index]
        if not worker.process.is_alive():
            worker = self._revive(index)
        fault = (
            None
            if self._faults is None
            else self._faults.next_fault(route_key=route)
        )
        if fault is not None and fault.kind == "crash_before_dispatch":
            # parent-side chaos: the worker dies between batches and the
            # dispatch path discovers it — the revive-at-dispatch case
            worker.process.kill()
            worker.process.join(1.0)
            worker = self._revive(index)
            fault = None
        directive = None if fault is None else fault.wire()
        # identity check, not just key membership: the pinned reference
        # is what keeps id(netlist) unrecycled, so a key whose pin is a
        # *different* object must re-ship
        ship_netlist = worker.known.get(key) is not netlist
        while True:
            try:
                worker.conn.send(
                    (
                        "run",
                        key,
                        netlist if ship_netlist else None,
                        int(n_phases),
                        bool(pipelined),
                        wire,
                        backend,
                        track,
                        directive,
                    )
                )
            except (OSError, ValueError):
                raise _AttemptFailed(
                    "worker pipe closed at dispatch"
                ) from None
            status, payload = self._receive(index, worker)
            if status == "miss":
                # the worker evicted (or never had) this key while the
                # parent advertised it: re-ship and retry — self-healing
                # against any cache desync.  The injected fault (if any)
                # was not consumed by the miss round trip exactly once,
                # so clear it rather than double-inject
                ship_netlist = True
                directive = None
                continue
            if status == "error":
                self._supervisor.record_success(index)  # the slot is fine
                raise payload  # type: ignore[misc]
            worker.known[key] = netlist
            worker.known.move_to_end(key)
            while len(worker.known) > WORKER_NETLIST_CACHE:
                worker.known.popitem(last=False)
            self._supervisor.record_success(index)
            return payload  # type: ignore[return-value]

    def simulate(
        self,
        netlist: WaveNetlist,
        streams: Sequence[WaveStream],
        *,
        n_phases: int = 3,
        pipelined: bool = True,
        backend: Optional[str] = None,
        track: Optional[bool] = None,
        route_key: object = None,
    ) -> list:
        """Run one batch on this group's worker; returns the reports.

        Synchronous: blocks until the worker replies (concurrent calls
        for *different* groups proceed in parallel on their own
        workers).  Worker death or hang is absorbed by supervised
        respawn-and-retry — every retry is bit-identical because
        simulation is deterministic — up to the batch's retry budget;
        past it the batch is quarantined with
        :class:`~repro.errors.ShardFailed` (and
        :class:`ShardFailed` is also raised, without any dispatch, when
        every slot's circuit breaker is open).  Worker-side simulation
        errors re-raise here exactly as the in-process engine would
        have raised them.
        """
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        key = (id(netlist), netlist.version)
        route = route_key if route_key is not None else key
        home = self._worker_for(route)
        wire = _wire_streams(streams)
        budget = self._supervisor.config.max_batch_retries
        failures = 0
        reroutes = 0
        while True:
            with self._state_lock:
                if self._closed:
                    raise ServeError("process shard pool is closed")
            index = self._supervisor.pick_slot(home, time.monotonic())
            if index is None:
                raise ShardFailed(
                    f"every worker slot's circuit breaker is open; "
                    f"batch of {len(wire)} streams was not dispatched"
                )
            slot_lock = self._workers[index].lock
            try:
                with slot_lock:
                    try:
                        return self._attempt(
                            index, key, netlist, wire, int(n_phases),
                            bool(pipelined), backend, track, route,
                        )
                    except _AttemptFailed as failed:
                        # recover the slot while still holding its lock:
                        # reaping/respawning unlocked would race another
                        # thread's fresh dispatch on the same slot (the
                        # backoff cap is far below the sanitizer's lock
                        # hold threshold)
                        self._fail_slot(index, failed.reason)
                        raise
            except _SlotUnavailable:
                # the slot broke before this batch was sent: reroute
                # without charging the batch's retry budget, but bound
                # the scan so cascading breakers cannot loop forever
                reroutes += 1
                if reroutes > len(self._workers):
                    raise ShardFailed(
                        f"no dispatchable worker slot left for a batch "
                        f"of {len(wire)} streams: every slot is broken "
                        "or breaking"
                    ) from None
                continue
            except _AttemptFailed as failed:
                failures += 1
                if failures > budget:
                    self._supervisor.note_quarantine()
                    raise ShardFailed(
                        f"batch of {len(wire)} streams failed "
                        f"{failures} dispatch attempts (last: "
                        f"{failed.reason}); quarantined as a poison "
                        "batch — only this batch fails, the pool keeps "
                        "serving"
                    ) from None
                continue

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def session_open(
        self,
        session_id: str,
        netlist: WaveNetlist,
        *,
        n_phases: int = 3,
        pipelined: bool = True,
        backend: Optional[str] = None,
        track: Optional[bool] = None,
        route_key: object = None,
    ) -> int:
        """Open (or re-open, for a feed-log replay) a worker session.

        Routes sticky (``hash(route key) % n_workers``) and returns the
        slot index the session landed on — every later
        :meth:`session_feed` / :meth:`session_close` must target that
        slot.  Worker loss during the open retries on a healthy slot
        under the batch retry budget (the session has no state yet, so
        a plain retry is safe); worker-side open errors (e.g. an
        unbalanced netlist) re-raise typed.
        """
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        route = route_key if route_key is not None else session_id
        home = self._worker_for(route)
        budget = self._supervisor.config.max_batch_retries
        failures = 0
        reroutes = 0
        while True:
            with self._state_lock:
                if self._closed:
                    raise ServeError("process shard pool is closed")
            index = self._supervisor.pick_slot(home, time.monotonic())
            if index is None:
                raise ShardFailed(
                    f"every worker slot's circuit breaker is open; "
                    f"session {session_id!r} cannot be opened"
                )
            slot_lock = self._workers[index].lock
            try:
                with slot_lock:
                    try:
                        worker = self._workers[index]
                        if not worker.process.is_alive():
                            worker = self._revive(index)
                        try:
                            worker.conn.send(
                                (
                                    "s_open",
                                    session_id,
                                    netlist,
                                    int(n_phases),
                                    bool(pipelined),
                                    backend,
                                    track,
                                )
                            )
                        except (OSError, ValueError):
                            raise _AttemptFailed(
                                "worker pipe closed at session open"
                            ) from None
                        status, payload = self._receive(index, worker)
                        if status == "error":
                            # the slot is fine; the *session* is not
                            self._supervisor.record_success(index)
                            raise payload  # type: ignore[misc]
                        self._supervisor.record_success(index)
                        return index
                    except _AttemptFailed as failed:
                        self._fail_slot(index, failed.reason)
                        raise
            except _SlotUnavailable:
                reroutes += 1
                if reroutes > len(self._workers):
                    raise ShardFailed(
                        f"no dispatchable worker slot left to open "
                        f"session {session_id!r}: every slot is broken "
                        "or breaking"
                    ) from None
                continue
            except _AttemptFailed as failed:
                failures += 1
                if failures > budget:
                    self._supervisor.note_quarantine()
                    raise ShardFailed(
                        f"session {session_id!r} failed {failures} open "
                        f"attempts (last: {failed.reason})"
                    ) from None
                continue

    def session_feed(
        self,
        session_id: str,
        slot: int,
        block: object,
        *,
        flush: bool,
        route_key: object = None,
    ) -> list:
        """One feed round trip; returns newly resolved (index, report)s.

        Single attempt, no silent retry: losing the worker loses the
        session's engine state, so the *caller* must replay the feed log
        — signalled by :class:`SessionWorkerLost`, raised only after the
        slot has been respawned and accounted under supervision.  The
        seeded fault plan is consulted exactly like a batch dispatch;
        worker-side engine errors re-raise typed.
        """
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        route = route_key if route_key is not None else session_id
        with self._workers[slot].lock:
            worker = self._workers[slot]
            if not worker.process.is_alive():
                # died between feeds: the engine state is gone either
                # way — account + respawn, then have the caller replay
                self._fail_slot(slot, "worker died between session feeds")
                raise SessionWorkerLost(
                    slot, "worker died between session feeds"
                )
            fault = (
                None
                if self._faults is None
                else self._faults.next_fault(route_key=route)
            )
            if fault is not None and fault.kind == "crash_before_dispatch":
                worker.process.kill()
                worker.process.join(1.0)
                self._fail_slot(slot, "injected crash before dispatch")
                raise SessionWorkerLost(
                    slot, "injected crash before dispatch"
                )
            directive = None if fault is None else fault.wire()
            try:
                worker.conn.send(
                    ("s_feed", session_id, block, bool(flush), directive)
                )
            except (OSError, ValueError):
                self._fail_slot(
                    slot, "worker pipe closed at session feed"
                )
                raise SessionWorkerLost(
                    slot, "worker pipe closed at session feed"
                ) from None
            try:
                status, payload = self._receive(slot, worker)
            except _AttemptFailed as failed:
                self._fail_slot(slot, failed.reason)
                raise SessionWorkerLost(slot, failed.reason) from None
            if status == "s_lost":
                # a respawn ate the worker-side session (another group's
                # dispatch revived the slot): the state is gone but the
                # slot is healthy — replay without charging a failure
                self._supervisor.record_success(slot)
                raise SessionWorkerLost(
                    slot, "worker-side session state lost to a respawn"
                )
            if status == "error":
                self._supervisor.record_success(slot)
                raise payload  # type: ignore[misc]
            self._supervisor.record_success(slot)
            return payload  # type: ignore[return-value]

    def session_close(
        self, session_id: str, slot: int, *, drain: bool
    ) -> list:
        """Close a worker session; returns the drain's (index, report)s.

        With ``drain`` the worker flushes the session first and the
        reply lists every feed the drain resolved; without it the state
        is dropped on the floor (an unknown sid is then not an error).
        Worker loss raises :class:`SessionWorkerLost` — actionable only
        when draining (an undrained close has nothing left to lose).
        """
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        with self._workers[slot].lock:
            worker = self._workers[slot]
            if not worker.process.is_alive():
                self._fail_slot(slot, "worker died before session close")
                raise SessionWorkerLost(
                    slot, "worker died before session close"
                )
            try:
                worker.conn.send(("s_close", session_id, bool(drain)))
            except (OSError, ValueError):
                self._fail_slot(
                    slot, "worker pipe closed at session close"
                )
                raise SessionWorkerLost(
                    slot, "worker pipe closed at session close"
                ) from None
            try:
                status, payload = self._receive(slot, worker)
            except _AttemptFailed as failed:
                self._fail_slot(slot, failed.reason)
                raise SessionWorkerLost(slot, failed.reason) from None
            if status == "s_lost":
                self._supervisor.record_success(slot)
                raise SessionWorkerLost(
                    slot, "worker-side session state lost to a respawn"
                )
            if status == "error":
                self._supervisor.record_success(slot)
                raise payload  # type: ignore[misc]
            self._supervisor.record_success(slot)
            return payload  # type: ignore[return-value]
