"""Process-level sharding: netlist groups routed to worker processes.

The PR-4 server is *thread*-sharded: independent netlist groups overlap
only where the packed kernels release the GIL inside numpy.  That covers
the ufunc-heavy step loop, but batching, packing, report slicing, and
every piece of Python glue still serialize on one core.
:class:`ProcessShardPool` removes that ceiling: each shard is a separate
OS process with its own interpreter, GIL, and
:func:`~repro.core.wavepipe.kernels.compile_netlist` cache.

Design
------
* **Wire format.**  The serve package is transport-agnostic by design —
  a request's payload is one ``(waves, inputs)`` bool block (or an empty
  list), exactly what :func:`~repro.core.wavepipe.batch.
  simulate_streams_packed` consumes.  Dispatching a batch to a worker
  sends that same representation over a :class:`multiprocessing.Pipe`
  (numpy arrays pickle to flat buffers); the reply is the list of
  :class:`~repro.core.wavepipe.simulator.WaveSimulationReport` objects,
  bit-identical to an in-process run because the kernels are
  deterministic.
* **Sticky routing.**  A netlist group is always routed to the same
  worker (``hash(route key) % n_workers``), so each worker compiles a
  netlist at most once per version: the netlist itself is shipped only
  on the worker's first batch for that ``(id, version)`` — later batches
  send the key alone and hit the worker-side cache (a small LRU).
* **Crash recovery.**  A worker that dies mid-batch (OOM killer,
  segfault, ``kill -9`` in the chaos tests) surfaces as a broken pipe in
  the parent.  The pool respawns the worker, re-ships the netlist (the
  fresh process has an empty cache), and re-runs the batch once — the
  retry is bit-identical because simulation is deterministic.  A second
  consecutive death for the same batch raises
  :class:`~repro.errors.ServeError` (the batch itself is the likely
  killer).  Restarts are reported through the ``on_restart`` callback
  (the server counts them in its metrics).
* **Spawn, not fork.**  Workers use the ``spawn`` start method: the
  parent runs shard *threads*, and forking a threaded process can
  deadlock on arbitrarily-held locks.  Spawned children import
  :mod:`repro` fresh, which is exactly the per-process compile cache the
  routing exploits.

The pool is usable on its own (``pool.simulate(...)`` is a synchronous
call, safe from concurrent threads — per-worker pipes are locked), but
its intended seat is ``SimulationServer(process_shards=N)``, where each
shard thread drives one worker process and the batcher/deadline logic
stays in the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from types import TracebackType
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.wavepipe.components import WaveNetlist
from ..errors import ServeError
from .queue import WaveStream

#: Worker-side cap on cached netlists (serving netlist churn must not
#: grow a worker without bound; eviction only costs a re-ship).
WORKER_NETLIST_CACHE = 32

#: Seconds a graceful worker shutdown may take before escalating to
#: terminate()/kill().
DEFAULT_STOP_TIMEOUT_S = 10.0


def _worker_main(conn: Connection) -> None:  # pragma: no cover - runs in a child
    """Loop of one shard process: receive batches, simulate, reply.

    (Excluded from coverage measurement: this body runs in spawned
    child processes, outside the parent's coverage tracer.)
    """
    # imported here so the spawn-time module import stays cheap and the
    # child resolves its *own* kernel backend (numba may differ)
    from ..core.wavepipe.batch import simulate_streams_packed
    from ..core.wavepipe.clocking import ClockingScheme

    netlists: "OrderedDict[tuple, object]" = OrderedDict()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing sane left to do
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        if kind == "ping":
            conn.send(("pong", os.getpid()))
            continue
        # ("run", key, netlist | None, n_phases, pipelined, streams,
        #  backend, track)
        _, key, netlist, n_phases, pipelined, streams, backend, track = (
            message
        )
        reply: tuple[str, object]
        try:
            if netlist is not None:
                netlists[key] = netlist
                netlists.move_to_end(key)  # re-ship of an old key
                while len(netlists) > WORKER_NETLIST_CACHE:
                    netlists.popitem(last=False)
            cached = netlists.get(key)
            if cached is None:
                # cache desync (e.g. this side evicted the key while
                # the parent still advertises it): ask for a re-ship
                # instead of failing the batch
                conn.send(("miss", key))
                continue
            netlists.move_to_end(key)  # LRU hit
            reports = simulate_streams_packed(
                cached,
                streams,
                clocking=ClockingScheme(n_phases),
                pipelined=pipelined,
                strict=False,
                backend=backend,
                track=track,
                validate=False,  # validated in the parent at submit time
            )
            reply = ("ok", reports)
        except BaseException as error:
            reply = ("error", error)
        try:
            conn.send(reply)
        except OSError:
            return  # pipe gone: the parent is closing or died
        except Exception:
            # unpicklable payload (pickle.PicklingError, or any other
            # serialization failure an exotic exception object can
            # produce): degrade to a picklable description rather than
            # killing the worker and losing the error entirely
            try:
                conn.send(
                    ("error", ServeError(f"worker error: {reply[1]!r}"))
                )
            except OSError:
                return


@dataclass
class _Worker:
    """Parent-side handle of one shard process."""

    process: BaseProcess
    conn: Connection
    # the lambda (rather than `threading.Lock` itself) resolves the
    # module's `threading` binding at *instantiation* time, so the
    # REPRO_SANITIZE=1 lock sanitizer instruments worker locks too
    lock: threading.Lock = field(
        default_factory=lambda: threading.Lock()
    )
    #: (netlist id, version) -> netlist: the keys this worker is known
    #: to have cached, holding a *strong* netlist reference.  The pin
    #: matters for correctness, not just speed: the key contains
    #: ``id(netlist)``, and only the pinned reference guarantees that
    #: id cannot be recycled by a different netlist while the worker
    #: still holds the old one under that key.  Bounded like the
    #: worker-side cache; reset on respawn (a fresh process has a
    #: fresh cache).  Desync in either direction is harmless — the
    #: worker answers ``miss`` and the batch is re-shipped.
    known: "OrderedDict[tuple, object]" = field(
        default_factory=OrderedDict
    )


def _wire_streams(
    streams: Sequence[WaveStream],
) -> list:
    """Payloads in the numpy wire format: one bool block per stream.

    ndarray payloads pass through untouched; list payloads are packed
    into ``(waves, inputs)`` bool blocks (pickling a flat buffer beats
    pickling nested lists of Python bools several-fold).  Empty streams
    stay the empty list — their report is synthesized without touching
    the kernels on either side.
    """
    wire: list[object] = []
    for vectors in streams:
        if isinstance(vectors, np.ndarray) or len(vectors) == 0:
            wire.append(vectors if len(vectors) else [])
        else:
            wire.append(np.asarray(vectors, dtype=bool))
    return wire


class ProcessShardPool:
    """Fixed pool of simulation worker processes with sticky routing.

    Parameters
    ----------
    n_workers:
        Shard processes to spawn (eagerly, so routing and the chaos
        tests see live pids immediately).
    on_restart:
        Optional zero-argument callback invoked once per dead-worker
        respawn (the server wires its ``worker_restarts`` metric here).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        on_restart: Optional[Callable[[], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise ServeError("a process pool needs at least one worker")
        self._ctx = multiprocessing.get_context("spawn")
        self._on_restart = on_restart
        self._closed = False
        self._state_lock = threading.Lock()
        self._workers: list[_Worker] = [
            self._spawn() for _ in range(int(n_workers))
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                name="repro-serve-worker",
                daemon=True,
            )
            process.start()
        except BaseException:
            # a failed spawn (fork/exec error, interpreter shutdown)
            # must not leak the pipe pair
            parent_conn.close()
            child_conn.close()
            raise
        try:
            child_conn.close()  # the child holds its own copy
        except BaseException:
            # close failing leaves a started worker nobody owns yet:
            # reap it before propagating
            process.terminate()
            parent_conn.close()
            raise
        return _Worker(process=process, conn=parent_conn)

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> list[int]:
        """Live worker pids (the chaos tests' kill targets)."""
        return [
            worker.process.pid
            for worker in self._workers
            if worker.process.is_alive() and worker.process.pid is not None
        ]

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop every worker: graceful stop, then terminate, then kill."""
        timeout = DEFAULT_STOP_TIMEOUT_S if timeout is None else timeout
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            # the per-worker lock serializes this stop frame against a
            # simulate() mid-send from another thread (interleaving two
            # writers would corrupt the pipe stream); holding it means
            # graceful close waits for the in-flight batch, which is
            # the drain semantics close promises
            with worker.lock:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass  # already dead or pipe gone: terminate below
        for worker in self._workers:
            worker.process.join(timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def kill(self) -> None:
        """Hard teardown: SIGKILL every worker, close pipes, **no locks**.

        The deadlock-guard path of ``SimulationServer.close`` calls
        this when a shard thread failed to stop: that thread may be
        blocked mid-conversation still *holding its worker's dispatch
        lock*, so the graceful :meth:`close` (which takes every worker
        lock to drain in-flight batches) could hang behind it forever.
        Killing without the locks is safe here — the workers are being
        discarded, not drained, and a SIGKILL'd child cannot corrupt
        parent state.  Idempotent, and safe to call after
        :meth:`close`.
        """
        with self._state_lock:
            self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _worker_for(self, route_key: object) -> int:
        # lint: determinism-hash-ok(sticky routing only needs within-process consistency; the hash never crosses a run or a process)
        return hash(route_key) % len(self._workers)

    def _revive(self, index: int) -> _Worker:
        """Replace a dead worker in place (caller holds its lock slot)."""
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        old = self._workers[index]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover
            pass
        if old.process.is_alive():  # pragma: no cover - defensive
            old.process.terminate()
        old.process.join(1.0)
        fresh = self._spawn()
        # carry the in-flight dispatch lock over: the caller already
        # holds old.lock, and per-index serialization must continue to
        # funnel through that same lock object
        fresh.lock = old.lock
        self._workers[index] = fresh
        if self._on_restart is not None:
            self._on_restart()
        return fresh

    def simulate(
        self,
        netlist: WaveNetlist,
        streams: Sequence[WaveStream],
        *,
        n_phases: int = 3,
        pipelined: bool = True,
        backend: Optional[str] = None,
        track: Optional[bool] = None,
        route_key: object = None,
    ) -> list:
        """Run one batch on this group's worker; returns the reports.

        Synchronous: blocks until the worker replies (concurrent calls
        for *different* groups proceed in parallel on their own
        workers).  Worker death is absorbed by one respawn-and-retry;
        worker-side simulation errors re-raise here exactly as the
        in-process engine would have raised them.
        """
        with self._state_lock:
            if self._closed:
                raise ServeError("process shard pool is closed")
        key = (id(netlist), netlist.version)
        index = self._worker_for(route_key if route_key is not None else key)
        wire = _wire_streams(streams)
        worker = self._workers[index]
        with worker.lock:
            deaths = 0
            ship_netlist = False
            while True:
                worker = self._workers[index]
                if not worker.process.is_alive():
                    worker = self._revive(index)
                # identity check, not just key membership: the pinned
                # reference is what keeps id(netlist) unrecycled, so a
                # key whose pin is a *different* object must re-ship
                ship_netlist = (
                    ship_netlist or worker.known.get(key) is not netlist
                )
                try:
                    worker.conn.send(
                        (
                            "run",
                            key,
                            netlist if ship_netlist else None,
                            int(n_phases),
                            bool(pipelined),
                            wire,
                            backend,
                            track,
                        )
                    )
                    status, payload = worker.conn.recv()
                except (EOFError, BrokenPipeError, ConnectionResetError,
                        OSError):
                    # the worker died under this batch: respawn; the
                    # retry re-ships the netlist (fresh empty cache) and
                    # is bit-identical because the kernels are
                    # deterministic
                    self._revive(index)
                    deaths += 1
                    if deaths >= 2:
                        raise ServeError(
                            "shard worker died twice running one batch "
                            f"({len(wire)} streams); giving up on it"
                        )
                    continue
                if status == "miss":
                    # the worker evicted (or never had) this key while
                    # the parent advertised it: re-ship and retry —
                    # self-healing against any cache desync
                    ship_netlist = True
                    continue
                if status == "error":
                    raise payload
                worker.known[key] = netlist
                worker.known.move_to_end(key)
                while len(worker.known) > WORKER_NETLIST_CACHE:
                    worker.known.popitem(last=False)
                return payload
