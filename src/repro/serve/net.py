"""Network serving tier: the numpy wire format behind a TCP socket.

:class:`SocketServer` fronts one in-process
:class:`~repro.serve.server.SimulationServer` with an asyncio socket
server running on a dedicated background thread — the serving process
keeps its shard threads (or worker processes) exactly as before, and
the event loop only ever does framing, dispatch, and reply fan-out.

Wire protocol
-------------
Length-prefixed frames: a 4-byte big-endian payload size followed by a
pickled message tuple (the request payloads inside are the same
``(waves, inputs)`` bool blocks the process shards ship over their
pipes — one wire format everywhere).  Client -> server::

    ("submit", burst_id, token, netlist | None, request_ids,
     streams, n_phases | None, pipelined | None, deadline_s | None)
    ("s_open", tag, session_id, netlist, n_phases | None,
     pipelined | None)                # open a streaming session
    ("s_feed", request_id, session_id, block, deadline_s | None)
    ("s_close", tag, session_id, drain)
    ("health", tag)
    ("ping", tag)

A netlist is shipped once per connection and cached server-side under
the client-chosen *token* (a bounded LRU, mirroring the worker-side
netlist cache); later submissions send the token alone.  Streaming
sessions (:meth:`SimulationClient.open_stream`) use client-chosen
session ids from the same id space; each ``s_feed`` resolves through
the ordinary ``result``/``error`` demux, and connection teardown
closes every session the connection opened (``drain=False`` — their
unresolved feeds fail typed, nothing strands).  Server -> client::

    ("admitted", burst_id)            # burst enqueued; futures pending
    ("rejected", burst_id, kind, msg) # typed refusal (queue_full, ...)
    ("miss", burst_id)                # token unknown: re-send netlist
    ("result", request_id, report)    # one request completed
    ("error", request_id, kind, msg)  # one request failed, typed
    ("s_opened", tag)                 # session is live
    ("s_open_failed", tag, kind, msg) # typed open refusal
    ("s_closed", tag)                 # session closed; results flushed
    ("health", tag, snapshot)
    ("pong", tag)
    ("fatal", kind, msg)              # protocol violation; conn closes

Reply ordering is FIFO per connection, and a session's ``close`` only
returns after every feed future resolved — so every ``result`` /
``error`` frame of a drained session is on the wire *before* its
``s_closed`` frame.

``kind`` is a stable string (see :data:`WIRE_ERROR_KINDS`) mapping back
to the exception hierarchy on the client, so ``ServerQueueFull``,
``DeadlineExceeded``, ``ShardFailed`` & co. round-trip the socket with
their types intact.

Backpressure and lifecycle
--------------------------
* Queue-full admission maps to a typed ``rejected`` reply — the wire
  form of the in-process synchronous raise.
* Slow readers are bounded: each connection's transport carries a write
  -buffer limit and the per-connection writer task awaits ``drain()``
  after every frame, so a stalled client stalls only its own replies
  (the reply backlog itself is bounded by the server's ``max_pending``).
* Clients that disconnect mid-request never strand futures: the
  underlying server resolves them regardless, and the done-callbacks
  simply drop replies for a dead connection.
* :meth:`SocketServer.close` with ``drain=True`` mirrors
  :func:`~repro.serve.server.graceful_drain`: stop accepting, refuse
  new submissions (typed), flush every in-flight reply, then tear the
  connections down; :meth:`SocketServer.serve_forever` wires that to
  SIGTERM/SIGINT for ``repro serve``.
"""

from __future__ import annotations

import asyncio
import pickle
import signal
import struct
import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from functools import partial
from types import TracebackType
from typing import Optional

from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from ..core.wavepipe.simulator import WaveSimulationReport
from ..errors import (
    ConnectionLost,
    DeadlineExceeded,
    ReproError,
    ServeError,
    ServerClosed,
    ServerQueueFull,
    SessionClosed,
    ShardFailed,
    SimulationError,
    WireProtocolError,
)
from .server import ServerSession, SimulationServer

#: Frame header: 4-byte big-endian payload length.
HEADER = struct.Struct("!I")

#: Refuse frames above this many payload bytes (a corrupt or hostile
#: length prefix must not allocate unbounded buffers server-side).
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Per-connection outbound transport buffer bound: past it the writer
#: task blocks in ``drain()`` instead of buffering without limit.
DEFAULT_WRITE_BUFFER_BYTES = 1 << 20

#: Per-connection cap on cached client netlists (mirrors the process
#: shards' worker-side cache; eviction only costs a ``miss`` re-ship).
CONNECTION_NETLIST_CACHE = 32

#: Error-type <-> wire-kind table, most specific first (the first
#: ``isinstance`` match encodes; the kind alone decodes).
_WIRE_ERRORS: "tuple[tuple[type[ReproError], str], ...]" = (
    (ServerQueueFull, "queue_full"),
    (DeadlineExceeded, "deadline"),
    (ShardFailed, "shard_failed"),
    (SessionClosed, "session_closed"),
    (ServerClosed, "closed"),
    (WireProtocolError, "protocol"),
    (ConnectionLost, "connection_lost"),
    (SimulationError, "simulation"),
    (ServeError, "serve"),
)

#: The stable wire-error kinds (documentation / exhaustiveness checks).
WIRE_ERROR_KINDS = tuple(kind for _, kind in _WIRE_ERRORS)

_KIND_TO_ERROR = {kind: err_type for err_type, kind in _WIRE_ERRORS}


def wire_error(error: BaseException) -> "tuple[str, str]":
    """Encode *error* as a ``(kind, message)`` wire pair."""
    for err_type, kind in _WIRE_ERRORS:
        if isinstance(error, err_type):
            return kind, str(error)
    return "serve", f"{type(error).__name__}: {error}"


def unwire_error(kind: str, message: str) -> ReproError:
    """Decode a wire pair back into its typed exception."""
    return _KIND_TO_ERROR.get(kind, ServeError)(message)


def encode_frame(message: object) -> bytes:
    """One length-prefixed wire frame for *message*."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return HEADER.pack(len(payload)) + payload


@dataclass
class _Connection:
    """Loop-thread state of one accepted client connection."""

    peer: str
    writer: asyncio.StreamWriter
    #: outbound frames; ``None`` is the writer task's close sentinel
    replies: "asyncio.Queue[Optional[bytes]]"
    #: token -> netlist: this client's shipped models (bounded LRU)
    netlists: "OrderedDict[int, WaveNetlist]" = field(
        default_factory=OrderedDict
    )
    #: client session id -> live server session this connection opened
    sessions: "dict[int, ServerSession]" = field(default_factory=dict)
    inflight: int = 0  # admitted requests without a sent reply
    closed: bool = False  # no further replies may be enqueued


class SocketServer:
    """Serve one :class:`SimulationServer` over a TCP socket.

    ``start()`` spins up an asyncio event loop on a daemon thread and
    binds ``host:port`` (port ``0`` picks a free port — read
    :attr:`address` back).  Every accepted connection gets a reader
    task (framing + dispatch) and a writer task (ordered, backpressured
    replies); simulation results flow from the shard threads into the
    loop via ``call_soon_threadsafe`` done-callbacks.  The server object
    itself stays usable in-process — the socket tier is a front, not a
    wrapper.
    """

    def __init__(
        self,
        server: SimulationServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        write_buffer_bytes: int = DEFAULT_WRITE_BUFFER_BYTES,
    ) -> None:
        if max_frame_bytes < 1:
            raise ServeError("max_frame_bytes must be >= 1")
        self._server = server
        self._host = host
        self._port = int(port)
        self._max_frame_bytes = int(max_frame_bytes)
        self._write_buffer_bytes = int(write_buffer_bytes)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[tuple[str, int]] = None
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections: "list[_Connection]" = []  # loop thread only
        self._handlers: "set[asyncio.Task[None]]" = set()
        self._draining = False
        self._closed = False
        self._close_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters: dict[str, int] = {
            key: 0
            for key in (
                "connections_opened",
                "connections_closed",
                "open_connections",
                "frames_in",
                "frames_out",
                "bytes_in",
                "bytes_out",
                "admitted_bursts",
                "rejected_bursts",
                "netlist_misses",
                "protocol_errors",
                "dropped_replies",
                "sessions_opened",
                "sessions_refused",
                "sessions_closed",
            )
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SocketServer":
        """Bind and start accepting; raises on bind failure."""
        if self._thread is not None:
            raise ServeError("socket server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-net", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join(1.0)
            raise ServeError(
                f"could not bind {self._host}:{self._port}: "
                f"{self._startup_error}"
            ) from self._startup_error
        return self

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._address is None:
            raise ServeError("socket server is not started")
        return self._address

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self._asyncio_server = server
        sockname = server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        self._ready.set()
        async with server:
            await self._stop_event.wait()

    def close(
        self, *, drain: bool = True, timeout: Optional[float] = 30.0
    ) -> None:
        """Stop the socket tier (the wrapped server stays up).

        ``drain=True`` refuses new submissions with a typed wire error,
        waits — bounded by *timeout* — until every in-flight request's
        reply has been flushed, then closes the connections;
        ``drain=False`` closes immediately (clients see
        :class:`~repro.errors.ConnectionLost` on whatever was pending).
        Idempotent and thread-safe.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None or self._address is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain, timeout), loop
        )
        grace = None if timeout is None else timeout + 5.0
        try:
            future.result(grace)
        except TimeoutError:  # pragma: no cover - shutdown wedged
            future.cancel()
        thread.join(grace)

    async def _shutdown(
        self, drain: bool, timeout: Optional[float]
    ) -> None:
        self._draining = True
        assert self._asyncio_server is not None
        assert self._stop_event is not None
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        if drain:
            await self._wait_drained(timeout)
        for conn in list(self._connections):
            conn.closed = True
            await conn.replies.put(None)
        # the writer tasks close the transports, which EOFs the reader
        # tasks; give the handlers a moment, then cancel stragglers
        for _ in range(100):
            if not self._handlers:
                break
            await asyncio.sleep(0.01)
        for task in list(self._handlers):  # lint: determinism-unordered-ok(cancellation only; the straggler tasks are independent and no result path observes the order)
            task.cancel()
        self._stop_event.set()

    async def _wait_drained(self, timeout: Optional[float]) -> None:
        """Best-effort wait until no admitted request lacks its reply."""
        loop = asyncio.get_running_loop()
        deadline_at = (
            None if timeout is None else loop.time() + timeout
        )
        while any(
            conn.inflight > 0 or not conn.replies.empty()
            for conn in self._connections
        ):
            if deadline_at is not None and loop.time() >= deadline_at:
                return
            await asyncio.sleep(0.01)
        # the last reply may still sit in a transport buffer: one more
        # tick lets the writer tasks flush it before teardown
        await asyncio.sleep(0.05)

    def serve_forever(self, *, duration_s: Optional[float] = None) -> None:
        """Block until SIGTERM/SIGINT (or *duration_s*), then drain-close.

        The network mirror of
        :func:`~repro.serve.server.graceful_drain`: the signal only
        sets an event; the drain itself runs here, in the calling
        frame, after the wait returns.  Signal handlers are installed
        only when called from the main thread (elsewhere only the
        duration bound applies).
        """
        stop_requested = threading.Event()
        previous: "dict[int, object]" = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(
                    signum, lambda _s, _f: stop_requested.set()
                )
        try:
            stop_requested.wait(duration_s)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)  # type: ignore[arg-type]
            self.close(drain=True)

    def __enter__(self) -> "SocketServer":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def _count(self, key: str, delta: int = 1) -> None:
        with self._counter_lock:
            self._counters[key] += delta

    def health(self) -> dict[str, object]:
        """The wrapped server's health plus a ``net`` section."""
        snapshot = self._server.health()
        with self._counter_lock:
            counters: dict[str, object] = dict(self._counters)
        with self._close_lock:
            closed = self._closed
        counters["listening"] = self._address is not None and not closed
        counters["address"] = (
            list(self._address) if self._address is not None else None
        )
        snapshot["net"] = counters
        return snapshot

    # ------------------------------------------------------------------
    # per-connection tasks (loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._handlers.add(task)
        peername = writer.get_extra_info("peername")
        peer = (
            f"{peername[0]}:{peername[1]}"
            if isinstance(peername, tuple) and len(peername) >= 2
            else str(peername)
        )
        conn = _Connection(
            peer=peer, writer=writer, replies=asyncio.Queue()
        )
        transport = writer.transport
        transport.set_write_buffer_limits(high=self._write_buffer_bytes)
        self._connections.append(conn)
        self._count("connections_opened")
        self._count("open_connections")
        writer_task = asyncio.ensure_future(self._write_loop(conn))
        try:
            await self._read_loop(conn, reader)
        finally:
            conn.closed = True
            await self._close_conn_sessions(conn)
            await conn.replies.put(None)
            try:
                await writer_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
            if conn in self._connections:
                self._connections.remove(conn)
            self._count("connections_closed")
            self._count("open_connections", -1)
            self._handlers.discard(task)

    async def _read_loop(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> None:
        while True:
            try:
                header = await reader.readexactly(HEADER.size)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # EOF or reset — normal disconnect paths
            (length,) = HEADER.unpack(header)
            if length > self._max_frame_bytes:
                self._fatal(
                    conn,
                    f"frame of {length} bytes exceeds the "
                    f"{self._max_frame_bytes}-byte limit",
                )
                return
            try:
                payload = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # truncated frame: peer went away mid-send
            self._count("frames_in")
            self._count("bytes_in", HEADER.size + length)
            try:
                message = pickle.loads(payload)
            except Exception as error:
                self._fatal(conn, f"unpicklable frame: {error}")
                return
            try:
                await self._dispatch(conn, message)
            except WireProtocolError as error:
                self._fatal(conn, str(error))
                return
            except (TypeError, ValueError, IndexError, KeyError) as error:
                self._fatal(conn, f"malformed message: {error!r}")
                return

    async def _write_loop(self, conn: _Connection) -> None:
        try:
            while True:
                frame = await conn.replies.get()
                if frame is None:
                    break
                conn.writer.write(frame)
                await conn.writer.drain()
                self._count("frames_out")
                self._count("bytes_out", len(frame))
        except (ConnectionError, OSError):
            conn.closed = True  # reader may still be alive: stop replies
        finally:
            try:
                conn.writer.close()
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # dispatch (loop thread)
    # ------------------------------------------------------------------
    def _enqueue_reply(self, conn: _Connection, message: object) -> None:
        if conn.closed:
            self._count("dropped_replies")
            return
        conn.replies.put_nowait(encode_frame(message))

    def _fatal(self, conn: _Connection, detail: str) -> None:
        self._count("protocol_errors")
        self._enqueue_reply(conn, ("fatal", "protocol", detail))

    async def _dispatch(self, conn: _Connection, message: object) -> None:
        if not isinstance(message, tuple) or not message:
            raise WireProtocolError(
                f"expected a non-empty message tuple, got {type(message).__name__}"
            )
        kind = message[0]
        if kind == "submit":
            await self._handle_submit(conn, message)
        elif kind == "s_open":
            await self._handle_s_open(conn, message)
        elif kind == "s_feed":
            await self._handle_s_feed(conn, message)
        elif kind == "s_close":
            await self._handle_s_close(conn, message)
        elif kind == "health":
            self._enqueue_reply(conn, ("health", message[1], self.health()))
        elif kind == "ping":
            self._enqueue_reply(conn, ("pong", message[1]))
        else:
            raise WireProtocolError(f"unknown message kind {kind!r}")

    async def _handle_submit(
        self, conn: _Connection, message: tuple
    ) -> None:
        (
            _,
            burst_id,
            token,
            netlist,
            request_ids,
            streams,
            n_phases,
            pipelined,
            deadline_s,
        ) = message
        if netlist is not None:
            conn.netlists[token] = netlist
            conn.netlists.move_to_end(token)
            while len(conn.netlists) > CONNECTION_NETLIST_CACHE:
                conn.netlists.popitem(last=False)
        model = conn.netlists.get(token)
        if model is None:
            # evicted (or never shipped): ask the client to re-send —
            # the same self-healing protocol the process shards speak
            self._count("netlist_misses")
            self._enqueue_reply(conn, ("miss", burst_id))
            return
        conn.netlists.move_to_end(token)
        if len(request_ids) != len(streams):
            raise WireProtocolError(
                f"submit burst {burst_id}: {len(request_ids)} request "
                f"ids for {len(streams)} streams"
            )
        if self._draining:
            self._count("rejected_bursts")
            self._enqueue_reply(
                conn,
                ("rejected", burst_id, "closed",
                 "socket server is draining"),
            )
            return
        clocking = None if n_phases is None else ClockingScheme(n_phases)
        loop = asyncio.get_running_loop()
        try:
            # admission validates and may compile: off the event loop
            futures = await loop.run_in_executor(
                None,
                partial(
                    self._server.submit_many,
                    model,
                    streams,
                    clocking=clocking,
                    pipelined=pipelined,
                    deadline_s=deadline_s,
                ),
            )
        except ReproError as error:
            self._count("rejected_bursts")
            self._enqueue_reply(
                conn, ("rejected", burst_id, *wire_error(error))
            )
            return
        conn.inflight += len(futures)
        self._count("admitted_bursts")
        self._enqueue_reply(conn, ("admitted", burst_id))
        for request_id, future in zip(request_ids, futures):
            future.add_done_callback(
                partial(self._on_future_done, conn, request_id)
            )

    # ------------------------------------------------------------------
    # streaming sessions (loop thread)
    # ------------------------------------------------------------------
    async def _handle_s_open(
        self, conn: _Connection, message: tuple
    ) -> None:
        _, tag, session_id, netlist, n_phases, pipelined = message
        if session_id in conn.sessions:
            raise WireProtocolError(
                f"session id {session_id} is already open on this "
                "connection"
            )
        if self._draining:
            self._count("sessions_refused")
            self._enqueue_reply(
                conn,
                ("s_open_failed", tag, "closed",
                 "socket server is draining"),
            )
            return
        clocking = None if n_phases is None else ClockingScheme(n_phases)
        loop = asyncio.get_running_loop()
        try:
            # opening compiles the plan and spins the session up:
            # off the event loop, like submit admission
            session = await loop.run_in_executor(
                None,
                partial(
                    self._server.open_stream,
                    netlist,
                    clocking=clocking,
                    pipelined=pipelined,
                ),
            )
        except ReproError as error:
            self._count("sessions_refused")
            self._enqueue_reply(
                conn, ("s_open_failed", tag, *wire_error(error))
            )
            return
        conn.sessions[session_id] = session
        self._count("sessions_opened")
        self._enqueue_reply(conn, ("s_opened", tag))

    async def _handle_s_feed(
        self, conn: _Connection, message: tuple
    ) -> None:
        _, request_id, session_id, block, deadline_s = message
        session = conn.sessions.get(session_id)
        if session is None:
            self._enqueue_reply(
                conn,
                ("error", request_id, "session_closed",
                 f"no open session {session_id} on this connection"),
            )
            return
        if self._draining:
            self._enqueue_reply(
                conn,
                ("error", request_id, "closed",
                 "socket server is draining"),
            )
            return
        loop = asyncio.get_running_loop()
        try:
            # feed() validates in the caller's thread: off the loop
            future = await loop.run_in_executor(
                None, partial(session.feed, block, deadline_s=deadline_s)
            )
        except ReproError as error:
            self._enqueue_reply(
                conn, ("error", request_id, *wire_error(error))
            )
            return
        conn.inflight += 1
        future.add_done_callback(
            partial(self._on_future_done, conn, request_id)
        )

    async def _handle_s_close(
        self, conn: _Connection, message: tuple
    ) -> None:
        _, tag, session_id, drain = message
        session = conn.sessions.pop(session_id, None)
        if session is None:
            # idempotent: double-close (or teardown race) is not an error
            self._enqueue_reply(conn, ("s_closed", tag))
            return
        loop = asyncio.get_running_loop()
        try:
            # a draining close blocks until every feed resolved; their
            # result frames are scheduled before this executor call
            # returns, so FIFO puts them on the wire before s_closed
            await loop.run_in_executor(
                None, partial(session.close, drain=bool(drain))
            )
        except ReproError:
            pass  # quarantined mid-drain: its feed errors already went out
        self._count("sessions_closed")
        self._enqueue_reply(conn, ("s_closed", tag))

    async def _close_conn_sessions(self, conn: _Connection) -> None:
        """Teardown path: the peer is gone, so nothing can drain.

        Every session the connection opened closes with ``drain=False``
        — unresolved feed futures fail with
        :class:`~repro.errors.SessionClosed` (their replies drop on the
        closed connection) and the per-plan state is discarded.
        """
        sessions = list(conn.sessions.values())
        conn.sessions.clear()
        loop = asyncio.get_running_loop()
        for session in sessions:
            try:
                await loop.run_in_executor(
                    None, partial(session.close, drain=False)
                )
            except ReproError:  # pragma: no cover - already closing
                pass
            self._count("sessions_closed")

    # ------------------------------------------------------------------
    # result fan-out (shard threads -> loop thread)
    # ------------------------------------------------------------------
    def _on_future_done(
        self,
        conn: _Connection,
        request_id: int,
        future: "Future[WaveSimulationReport]",
    ) -> None:
        if future.cancelled():
            message: tuple = (
                "error", request_id, "closed",
                "request cancelled at server shutdown",
            )
        else:
            error = future.exception()
            if error is None:
                message = ("result", request_id, future.result())
            else:
                message = ("error", request_id, *wire_error(error))
        loop = self._loop
        if loop is None:  # pragma: no cover - post-teardown resolution
            return
        try:
            loop.call_soon_threadsafe(self._finish_request, conn, message)
        except RuntimeError:
            # the loop closed while this future resolved: the reply has
            # nowhere to go, but the future itself is resolved — nothing
            # strands, the client (if any) sees ConnectionLost
            self._count("dropped_replies")

    def _finish_request(self, conn: _Connection, message: object) -> None:
        conn.inflight -= 1
        self._enqueue_reply(conn, message)
