"""Worker-slot supervision policy: backoff, breakers, retry budgets.

:class:`WorkerSupervisor` is the pure *policy* half of the process-shard
robustness story (the mechanism — killing, respawning, poll loops —
lives in :mod:`repro.serve.shards`).  It tracks, per worker slot:

* **Respawn accounting** — total restarts and the consecutive-failure
  streak (reset by any successful batch on that slot).
* **Exponential backoff** — each consecutive failure doubles the respawn
  delay (``backoff_base_s`` up to ``backoff_cap_s``), so a crash-looping
  slot cannot burn a CPU re-spawning in a tight loop.
* **Crash-loop circuit breaker** — ``breaker_threshold`` consecutive
  failures *open* the slot's breaker: the slot is left dead, routing
  sends sticky groups to the next healthy slot (degraded mode), and
  after ``breaker_reset_s`` seconds exactly one dispatch is admitted as
  a half-open *probe* (success closes the breaker, failure re-opens it).

The batch-level **retry budget** (``max_batch_retries``) lives here too:
a batch whose dispatch fails more than this many times beyond the first
attempt is *quarantined* — only its futures fail, with
:class:`~repro.errors.ShardFailed` — because a batch that reliably kills
every worker it touches is the likely killer (the poison-batch case),
and retrying it forever would take the whole pool down.

All clock inputs are passed in by the caller (``now`` is a
``time.monotonic`` instant), which keeps the policy deterministic and
directly unit-testable with a fake clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ServeError


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the worker supervision policy (see the module docstring).

    The defaults are production-shaped: a couple of bit-identical
    retries before quarantine, sub-second first backoff, and a breaker
    that only opens on a genuine crash loop (five consecutive failures
    with no successful batch in between).
    """

    #: failed dispatch attempts a batch may retry beyond its first
    #: (exceeding it quarantines the batch with ``ShardFailed``)
    max_batch_retries: int = 2
    #: respawn delay after a slot's first consecutive failure
    backoff_base_s: float = 0.05
    #: ceiling of the exponential respawn delay
    backoff_cap_s: float = 2.0
    #: consecutive slot failures that open the crash-loop breaker
    breaker_threshold: int = 5
    #: seconds an open breaker waits before admitting a half-open probe
    breaker_reset_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_batch_retries < 0:
            raise ServeError("max_batch_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ServeError("backoff delays must be >= 0")
        if self.breaker_threshold < 1:
            raise ServeError("breaker_threshold must be >= 1")
        if self.breaker_reset_s < 0:
            raise ServeError("breaker_reset_s must be >= 0")


@dataclass
class _Slot:
    """Supervision state of one worker slot."""

    restarts: int = 0
    consecutive_failures: int = 0
    breaker_opens: int = 0
    #: monotonic instant the breaker opened; ``None`` = closed
    broken_at: Optional[float] = None
    #: a half-open probe dispatch is currently claimed
    probing: bool = False

    def state(self, now: float, reset_s: float) -> str:
        if self.broken_at is None:
            return "healthy"
        if self.probing:
            return "probing"
        if now - self.broken_at >= reset_s:
            return "probe-ready"
        return "broken"


class WorkerSupervisor:
    """Thread-safe supervision state for a fixed set of worker slots."""

    def __init__(
        self, n_slots: int, config: Optional[SupervisorConfig] = None
    ) -> None:
        if n_slots < 1:
            raise ServeError("a supervisor needs at least one slot")
        self.config = config if config is not None else SupervisorConfig()
        self._lock = threading.Lock()
        self._slots = [_Slot() for _ in range(int(n_slots))]
        self._hung_reaped = 0
        self._quarantined = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def pick_slot(self, home: int, now: float) -> Optional[int]:
        """The slot a batch homed at *home* should dispatch to.

        Sticky routing degrades, never breaks: a healthy home slot is
        always chosen (so routing stays sticky in the healthy case);
        a home slot with an open breaker is passed over for the next
        healthy slot (deterministic scan order, so a given home keeps
        hitting the same fallback while the outage lasts).  A slot whose
        breaker has cooled down for ``breaker_reset_s`` is claimed for a
        single half-open probe.  ``None`` means every slot is broken and
        the batch cannot be dispatched at all.
        """
        n_slots = len(self._slots)
        with self._lock:
            for offset in range(n_slots):
                index = (home + offset) % n_slots
                slot = self._slots[index]
                if slot.broken_at is None:
                    return index
                if (
                    not slot.probing
                    and now - slot.broken_at
                    >= self.config.breaker_reset_s
                ):
                    slot.probing = True  # claim the one probe dispatch
                    return index
            return None

    # ------------------------------------------------------------------
    # outcome accounting
    # ------------------------------------------------------------------
    def record_success(self, index: int) -> None:
        """A batch completed on *index*: reset the streak, close breaker."""
        with self._lock:
            slot = self._slots[index]
            slot.consecutive_failures = 0
            slot.broken_at = None
            slot.probing = False

    def record_failure(self, index: int, now: float) -> Tuple[float, bool]:
        """One slot failure (crash, hang, EOF) at monotonic instant *now*.

        Returns ``(backoff_s, breaker_opened)``: with an open breaker
        the slot must be left dead (no respawn — routing will skip it);
        otherwise the caller sleeps ``backoff_s`` and respawns.  A
        failed half-open probe re-opens the breaker immediately,
        whatever the streak.
        """
        with self._lock:
            slot = self._slots[index]
            slot.consecutive_failures += 1
            slot.restarts += 1
            failed_probe = slot.broken_at is not None
            slot.probing = False
            if failed_probe or (
                slot.consecutive_failures >= self.config.breaker_threshold
            ):
                slot.broken_at = now
                slot.breaker_opens += 1
                return 0.0, True
            exponent = slot.consecutive_failures - 1
            backoff = min(
                self.config.backoff_cap_s,
                self.config.backoff_base_s * (2.0 ** exponent),
            )
            return backoff, False

    def breaker_open(self, index: int) -> bool:
        """True while *index*'s breaker is open (including mid-probe).

        The dispatch mechanism uses this to tell a half-open probe's
        *expectedly* dead worker (the slot was deliberately left dead
        when its breaker opened — respawn without charging a failure)
        from a fresh crash-between-batches discovery.
        """
        with self._lock:
            return self._slots[index].broken_at is not None

    def note_hang_reaped(self) -> None:
        """One hung worker was detected and SIGKILLed."""
        with self._lock:
            self._hung_reaped += 1

    def note_quarantine(self) -> None:
        """One batch exhausted its retry budget and was quarantined."""
        with self._lock:
            self._quarantined += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def slot_states(self, now: float) -> List[Dict[str, object]]:
        """Per-slot health snapshot (the ``health()`` building block)."""
        with self._lock:
            return [
                {
                    "state": slot.state(
                        now, self.config.breaker_reset_s
                    ),
                    "restarts": slot.restarts,
                    "consecutive_failures": slot.consecutive_failures,
                    "breaker_opens": slot.breaker_opens,
                    "breaker_open": slot.broken_at is not None,
                }
                for slot in self._slots
            ]

    def totals(self) -> Dict[str, int]:
        """Pool-wide supervision counters."""
        with self._lock:
            return {
                "hung_reaped": self._hung_reaped,
                "quarantined_batches": self._quarantined,
                "breaker_opens": sum(
                    slot.breaker_opens for slot in self._slots
                ),
                "worker_restarts": sum(
                    slot.restarts for slot in self._slots
                ),
            }
