"""Blocking socket client of the network serving tier.

:class:`SimulationClient` mirrors the in-process
:class:`~repro.serve.server.SimulationServer` API over the wire
protocol of :mod:`repro.serve.net`: ``submit``/``submit_many`` return
:class:`concurrent.futures.Future` objects, admission errors
(:class:`~repro.errors.ServerQueueFull`, validation
:class:`~repro.errors.SimulationError`, ...) raise synchronously from
the submit call, and per-request failures
(:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.ShardFailed`, ...) come back through the
futures — typed, exactly as a local caller would see them.  Reports are
bit-identical to solo runs because the socket moves the same numpy wire
format the process shards already speak; nothing on the path touches
payload semantics.

One background reader thread demultiplexes replies; submissions from
any number of caller threads are safe (frame writes are serialized, the
pending-future table is lock-guarded).  Netlists are shipped once per
connection and referenced by token afterwards; a server-side cache
eviction answers ``miss`` and the client re-ships transparently.  If
the connection dies, every pending future fails with
:class:`~repro.errors.ConnectionLost` — futures never strand.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import struct
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from types import TracebackType
from typing import BinaryIO, Optional, Sequence

from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from ..core.wavepipe.simulator import WaveSimulationReport
from ..errors import (
    ConnectionLost,
    ServeError,
    SessionClosed,
    WireProtocolError,
)
from .net import DEFAULT_MAX_FRAME_BYTES, HEADER, encode_frame, unwire_error
from .queue import WaveStream
from .shards import _wire_streams

#: Default bound on one burst's admission round-trip (the server
#: answers admitted/rejected/miss immediately after enqueueing; hitting
#: this means a dead or wedged serving process).
ADMISSION_TIMEOUT_S = 60.0


@dataclass
class _Burst:
    """One submit burst awaiting its admission verdict."""

    event: threading.Event = field(default_factory=threading.Event)
    #: ("admitted",) | ("rejected", kind, msg) | ("miss",) | ("lost", msg)
    verdict: Optional[tuple] = None


class ClientSession:
    """One streaming session over the wire (:meth:`SimulationClient.open_stream`).

    The network mirror of
    :class:`~repro.serve.server.ServerSession`: :meth:`feed` appends a
    chunk of waves to the server-side stream and returns a
    :class:`~concurrent.futures.Future` for its report — bit-identical
    to the matching slice of a solo run — and :meth:`close` with
    ``drain=True`` blocks until every feed's result frame has arrived.
    Feed futures fail typed: :class:`~repro.errors.DeadlineExceeded`,
    :class:`~repro.errors.SessionClosed` (server discarded the session
    without draining), :class:`~repro.errors.ShardFailed` (replay
    budget exhausted), or :class:`~repro.errors.ConnectionLost` if the
    socket dies — never stranded.  Obtain only via ``open_stream``; use
    as a context manager or :meth:`close` explicitly.
    """

    def __init__(self, client: "SimulationClient", session_id: int) -> None:
        self._client = client
        self.session_id = session_id
        self._closed = False  # guarded by client._lock

    def feed(
        self,
        vectors: WaveStream,
        *,
        deadline_s: Optional[float] = None,
    ) -> "Future[WaveSimulationReport]":
        """Append a chunk of waves to the stream; returns its future.

        Raises :class:`~repro.errors.SessionClosed` after
        :meth:`close`, :class:`~repro.errors.ConnectionLost` if the
        socket is gone.  Server-side refusals (unknown session after a
        server restart, deadline misses, quarantine) come back through
        the future with their wire types.
        """
        client = self._client
        with client._lock:
            client._ensure_usable()
            if self._closed:
                raise SessionClosed(
                    f"feed() on closed client session {self.session_id}"
                )
            request_id = next(client._ids)
            future: "Future[WaveSimulationReport]" = Future()
            client._pending[request_id] = future
        (block,) = _wire_streams([vectors])
        client._send(
            ("s_feed", request_id, self.session_id, block, deadline_s)
        )
        return future

    def close(
        self, *, drain: bool = True, timeout_s: Optional[float] = None
    ) -> None:
        """End the stream; with ``drain=True`` waits for every result.

        Blocks until the server's ``s_closed`` acknowledgement — which,
        by the protocol's FIFO reply ordering, arrives *after* every
        feed future of a drained session has resolved.  Idempotent.
        Raises :class:`~repro.errors.ConnectionLost` if the socket dies
        mid-close (the feed futures fail the same way — nothing
        strands).
        """
        client = self._client
        with client._lock:
            if self._closed:
                return
            self._closed = True
            if client._closing or client._lost is not None:
                # connection teardown already closed the server side
                return
            tag = next(client._ids)
            waiter: "Future[None]" = Future()
            client._stream_waiters[tag] = waiter
        client._send(("s_close", tag, self.session_id, bool(drain)))
        waiter.result(timeout_s)

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class SimulationClient:
    """Blocking client of one :class:`~repro.serve.net.SocketServer`.

    Parameters
    ----------
    host / port:
        The socket server's bound address
        (:attr:`~repro.serve.net.SocketServer.address`).
    connect_timeout_s:
        Bound on establishing the TCP connection.
    admission_timeout_s:
        Bound on one burst's admission round-trip.
    max_frame_bytes:
        Refuse inbound frames above this size (matches the server's
        limit; a reply this large means a corrupt stream).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 10.0,
        admission_timeout_s: float = ADMISSION_TIMEOUT_S,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._admission_timeout_s = float(admission_timeout_s)
        self._max_frame_bytes = int(max_frame_bytes)
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout_s
        )
        self._sock.settimeout(None)
        self._rfile: BinaryIO = self._sock.makefile("rb")
        # _lock guards every mutable table below; _send_lock serializes
        # whole frames onto the socket (two interleaved sendall calls
        # would corrupt the stream)
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: "dict[int, Future[WaveSimulationReport]]" = {}
        self._bursts: "dict[int, _Burst]" = {}
        self._health_waiters: "dict[int, Future[dict[str, object]]]" = {}
        #: tag -> waiter for s_opened / s_open_failed / s_closed replies
        self._stream_waiters: "dict[int, Future[None]]" = {}
        #: (netlist id, version) -> wire token of a shipped netlist
        self._tokens: "dict[tuple[int, int], int]" = {}
        #: token -> netlist: pins object ids used in token keys
        self._token_pins: "dict[int, WaveNetlist]" = {}
        self._closing = False
        self._lost: Optional[str] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-serve-client", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # submission API (mirrors SimulationServer)
    # ------------------------------------------------------------------
    def submit_many(
        self,
        netlist: WaveNetlist,
        streams: Sequence[WaveStream],
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> "list[Future[WaveSimulationReport]]":
        """Submit a burst; one future per stream, admission errors raise.

        Blocks only for the admission round-trip: the server answers
        admitted/rejected before any simulation happens, so queue-full
        backpressure and validation errors raise here, synchronously,
        with their in-process types — while the results themselves
        arrive through the returned futures as the server resolves
        them.
        """
        if not streams:
            return []
        n_phases = None if clocking is None else clocking.n_phases
        key = (id(netlist), netlist.version)
        with self._lock:
            self._ensure_usable()
            token = self._tokens.get(key)
            if token is None:
                token = next(self._ids)
                self._tokens[key] = token
                self._token_pins[token] = netlist
                ship = True
            else:
                ship = False
            request_ids = [next(self._ids) for _ in range(len(streams))]
            futures: "list[Future[WaveSimulationReport]]" = []
            for request_id in request_ids:
                future: "Future[WaveSimulationReport]" = Future()
                self._pending[request_id] = future
                futures.append(future)
        wire = _wire_streams(streams)
        for resend in (False, True):
            with self._lock:
                burst_id = next(self._ids)
                burst = _Burst()
                self._bursts[burst_id] = burst
            self._send(
                (
                    "submit",
                    burst_id,
                    token,
                    netlist if (ship or resend) else None,
                    request_ids,
                    wire,
                    n_phases,
                    pipelined,
                    deadline_s,
                )
            )
            if not burst.event.wait(self._admission_timeout_s):
                with self._lock:
                    self._bursts.pop(burst_id, None)
                self._drop_pending(request_ids)
                raise ServeError(
                    f"no admission reply within "
                    f"{self._admission_timeout_s:.1f}s"
                )
            verdict = burst.verdict
            assert verdict is not None
            if verdict[0] == "admitted":
                return futures
            if verdict[0] == "miss":
                continue  # server evicted the token: re-ship and retry
            self._drop_pending(request_ids)
            if verdict[0] == "lost":
                raise ConnectionLost(verdict[1])
            raise unwire_error(verdict[1], verdict[2])
        self._drop_pending(request_ids)
        raise WireProtocolError(
            "server reported a netlist miss immediately after a re-ship"
        )

    def submit(
        self,
        netlist: WaveNetlist,
        vectors: WaveStream,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[WaveSimulationReport]":
        """Submit one wave stream; returns its completion future."""
        (future,) = self.submit_many(
            netlist,
            [vectors],
            clocking=clocking,
            pipelined=pipelined,
            deadline_s=deadline_s,
        )
        return future

    def simulate(
        self,
        netlist: WaveNetlist,
        vectors: WaveStream,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> WaveSimulationReport:
        """Submit one stream and block for its report."""
        return self.submit(
            netlist,
            vectors,
            clocking=clocking,
            pipelined=pipelined,
            deadline_s=deadline_s,
        ).result(timeout_s)

    def open_stream(
        self,
        netlist: WaveNetlist,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        timeout_s: Optional[float] = None,
    ) -> ClientSession:
        """Open a streaming session on the server; see :class:`ClientSession`.

        Ships the netlist with the open frame (sessions are long-lived;
        the one-time cost is amortized over the stream) and blocks for
        the server's verdict: open-time refusals — an unbalanced
        netlist's :class:`~repro.errors.SimulationError`, a draining
        server's :class:`~repro.errors.ServerClosed` — raise here with
        their wire types.  *timeout_s* defaults to the client's
        admission timeout.
        """
        n_phases = None if clocking is None else clocking.n_phases
        with self._lock:
            self._ensure_usable()
            session_id = next(self._ids)
            tag = next(self._ids)
            waiter: "Future[None]" = Future()
            self._stream_waiters[tag] = waiter
        self._send(
            ("s_open", tag, session_id, netlist, n_phases, pipelined)
        )
        if timeout_s is None:
            timeout_s = self._admission_timeout_s
        try:
            waiter.result(timeout_s)
        except TimeoutError:
            with self._lock:
                self._stream_waiters.pop(tag, None)
            raise ServeError(
                f"no open_stream reply within {timeout_s:.1f}s"
            ) from None
        return ClientSession(self, session_id)

    def health(
        self, *, timeout_s: Optional[float] = 10.0
    ) -> dict[str, object]:
        """Round-trip the server's health snapshot (net section included)."""
        with self._lock:
            self._ensure_usable()
            tag = next(self._ids)
            future: "Future[dict[str, object]]" = Future()
            self._health_waiters[tag] = future
        self._send(("health", tag))
        return future.result(timeout_s)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection; pending futures fail (never strand)."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(5.0)
        self._fail_all("client closed with requests pending")

    def __enter__(self) -> "SimulationClient":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_usable(self) -> None:
        """Caller holds ``self._lock``."""
        if self._closing:  # lint: unguarded-ok(caller holds _lock per the docstring contract)
            raise ServeError("client is closed")
        lost = self._lost  # lint: unguarded-ok(caller holds _lock per the docstring contract)
        if lost is not None:
            raise ConnectionLost(lost)

    def _drop_pending(self, request_ids: Sequence[int]) -> None:
        with self._lock:
            for request_id in request_ids:
                self._pending.pop(request_id, None)

    def _send(self, message: object) -> None:
        frame = encode_frame(message)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as error:
            self._fail_all(f"send failed: {error}")
            raise ConnectionLost(f"send failed: {error}") from None

    def _read_loop(self) -> None:
        detail = "server closed the connection"
        try:
            while True:
                header = self._rfile.read(HEADER.size)
                if header is None or len(header) < HEADER.size:
                    break
                (length,) = HEADER.unpack(header)
                if length > self._max_frame_bytes:
                    detail = (
                        f"inbound frame of {length} bytes exceeds the "
                        f"{self._max_frame_bytes}-byte limit"
                    )
                    break
                payload = self._rfile.read(length)
                if payload is None or len(payload) < length:
                    break
                try:
                    message = pickle.loads(payload)
                except Exception as error:
                    detail = f"undecodable reply frame: {error}"
                    break
                if not self._on_message(message):
                    with self._lock:
                        detail = str(self._lost or "fatal server reply")
                    break
        except (OSError, ValueError, struct.error) as error:
            detail = f"connection lost: {error}"
        self._fail_all(detail)

    def _on_message(self, message: tuple) -> bool:
        """Handle one reply; False ends the reader (fatal)."""
        kind = message[0]
        if kind in ("admitted", "rejected", "miss"):
            with self._lock:
                burst = self._bursts.pop(message[1], None)
            if burst is not None:
                burst.verdict = (kind, *message[2:])
                burst.event.set()
            return True
        if kind == "result":
            with self._lock:
                future = self._pending.pop(message[1], None)
            if future is not None:
                future.set_result(message[2])
            return True
        if kind == "error":
            with self._lock:
                future = self._pending.pop(message[1], None)
            if future is not None:
                future.set_exception(unwire_error(message[2], message[3]))
            return True
        if kind in ("s_opened", "s_closed"):
            with self._lock:
                stream_waiter = self._stream_waiters.pop(message[1], None)
            if stream_waiter is not None:
                stream_waiter.set_result(None)
            return True
        if kind == "s_open_failed":
            with self._lock:
                stream_waiter = self._stream_waiters.pop(message[1], None)
            if stream_waiter is not None:
                stream_waiter.set_exception(
                    unwire_error(message[2], message[3])
                )
            return True
        if kind == "health":
            with self._lock:
                waiter = self._health_waiters.pop(message[1], None)
            if waiter is not None:
                waiter.set_result(message[2])
            return True
        if kind == "pong":
            return True
        if kind == "fatal":
            with self._lock:
                self._lost = f"server closed the connection: {message[2]}"
            return False
        # an unknown reply kind means the stream is out of sync:
        # treat it as fatal rather than guessing at frame boundaries
        with self._lock:
            self._lost = f"unknown reply kind {kind!r}"
        return False

    def _fail_all(self, detail: str) -> None:
        """Resolve everything pending with ConnectionLost (idempotent)."""
        with self._lock:
            if self._lost is None:
                self._lost = detail
            pending = list(self._pending.values())
            self._pending.clear()
            bursts = list(self._bursts.values())
            self._bursts.clear()
            waiters = list(self._health_waiters.values())
            self._health_waiters.clear()
            stream_waiters = list(self._stream_waiters.values())
            self._stream_waiters.clear()
            closing = self._closing
        reason = detail if not closing else "client closed"
        for future in pending:
            if not future.done():
                future.set_exception(ConnectionLost(reason))
        for waiter in waiters:
            if not waiter.done():
                waiter.set_exception(ConnectionLost(reason))
        for stream_waiter in stream_waiters:
            if not stream_waiter.done():
                stream_waiter.set_exception(ConnectionLost(reason))
        for burst in bursts:
            if burst.verdict is None:
                burst.verdict = ("lost", reason)
                burst.event.set()
