"""Closed-loop and open-loop load generators for the serving layer.

Shared by ``repro serve-bench`` and ``benchmarks/`` so the CLI demo and
the CI-gated benches measure the exact same thing.

Two traffic models, one accounting discipline:

* **Closed loop** (:func:`run_closed_loop`) models multiplexed serving
  clients: *clients* threads each keep a window of requests in flight
  (submitted together through ``submit_many``, collected in FIFO order,
  then the next window goes out), so the total in-flight request count
  is the requested *concurrency* — the remainder of an indivisible
  concurrency is distributed across client windows rather than silently
  dropped.  Per-request latency runs from the window's submission to
  the instant that request's future *resolves* (timestamped in an
  ``add_done_callback``), queueing and batching included — never from
  when the sequential collection loop happens to observe it.
* **Open loop** (:func:`run_open_loop`) replays a seeded
  :class:`OpenLoopScenario` — Poisson / uniform / bursty arrivals at a
  fixed offered rate with a (possibly heavy-tailed) request-size mix —
  without ever waiting for results before injecting the next arrival.
  Latency is measured from each request's *scheduled* arrival instant,
  so a lagging injector inflates latency instead of hiding overload
  (no coordinated omission), and the resulting
  :class:`OpenLoopReport` carries an SLO-style ledger that must
  balance: offered == completed + timed_out + expired + rejected +
  shard_failed.

Failure accounting (both loops): a request that outlives
*request_timeout_s*, its server-side deadline, queue-full backpressure,
or a quarantined shard batch does **not** raise out of the generator —
it is recorded in the report (``timed_out`` / ``expired`` /
``rejected`` / ``shard_failed`` index lists, a ``None`` placeholder in
``reports``) and the run carries on, the way a real load generator
keeps hammering through stragglers and brownouts.  Any other error
(validation, capacity misuse, engine failure) still propagates.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from ..core.wavepipe.simulator import WaveSimulationReport, random_vectors
from ..errors import (
    ConnectionLost,
    DeadlineExceeded,
    ServeError,
    ServerQueueFull,
    SessionClosed,
    ShardFailed,
)
from .queue import WaveStream

#: Default client-thread count (windows widen to reach the requested
#: concurrency; more OS threads would only add GIL churn).
DEFAULT_CLIENTS = 16

#: Default bound for one request's future under load (seconds); hitting
#: it means a wedged shard.  Overridable per run through
#: ``request_timeout_s`` — timed-out requests are recorded in the
#: report, not raised.
REQUEST_TIMEOUT_S = 300.0

#: Supported open-loop arrival processes.
ARRIVALS = ("poisson", "uniform", "bursty")

#: A heavy-tailed waves-per-request mix (``(waves, weight)`` pairs):
#: mostly small operand streams with a fat tail of pass-sized ones, the
#: shape that stresses coalescing and the lane planner at once.
HEAVY_TAIL_SIZES: tuple[tuple[int, float], ...] = (
    (16, 70.0),
    (64, 24.0),
    (256, 5.0),
    (1024, 1.0),
)


class SubmitTarget(Protocol):
    """Anything a load generator can drive: the in-process
    :class:`~repro.serve.server.SimulationServer` or the socket tier's
    :class:`~repro.serve.client.SimulationClient` — both expose the
    same ``submit_many`` admission surface."""

    def submit_many(
        self,
        netlist: WaveNetlist,
        streams: Sequence[WaveStream],
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> "list[Future[WaveSimulationReport]]":
        ...


def nearest_rank(latencies: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of *latencies*, in seconds (0.0 if empty)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, int(round(quantile * len(ordered))))
    return ordered[min(len(ordered), rank) - 1]


def _netlist_runs(
    chunk: Sequence[int],
    netlists: Optional[Sequence[WaveNetlist]],
    netlist: Optional[WaveNetlist],
) -> "list[tuple[WaveNetlist, list[int]]]":
    """Split *chunk* into maximal runs sharing one netlist.

    With per-request *netlists*, consecutive requests for the same model
    still land as one ``submit_many`` admission (the multi-model mix the
    process-shard bench drives); otherwise the whole chunk is one run of
    the shared *netlist*.
    """
    if not chunk:
        return []
    if netlists is None:
        assert netlist is not None  # validated by the run entry points
        return [(netlist, list(chunk))]
    runs: "list[tuple[WaveNetlist, list[int]]]" = []
    for index in chunk:
        model = netlists[index]
        if runs and runs[-1][0] is model:
            runs[-1][1].append(index)
        else:
            runs.append((model, [index]))
    return runs


@dataclass
class LoadReport:
    """Outcome of one closed-loop run against a server.

    ``reports`` is indexed by submission position; a slot is ``None``
    exactly when that request timed out client-side (its index is in
    ``timed_out``), expired server-side (``expired``), was refused by
    queue-full backpressure (``rejected``), or was quarantined with its
    shard batch (``shard_failed``).  Latency and throughput figures
    cover completed requests only.
    """

    reports: list[Optional[WaveSimulationReport]]  # per request
    latencies_s: list[float]  # completed requests, submission order
    elapsed_s: float  # gate release -> last client done
    total_waves: int  # waves across *completed* requests
    concurrency: int  # requested in-flight requests (sum of windows)
    clients: int
    timed_out: list[int] = field(default_factory=list)
    expired: list[int] = field(default_factory=list)
    rejected: list[int] = field(default_factory=list)
    shard_failed: list[int] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        """Requests driven, completed or not."""
        return len(self.reports)

    @property
    def n_completed(self) -> int:
        """Requests whose future resolved with a report."""
        return sum(1 for report in self.reports if report is not None)

    @property
    def waves_per_s(self) -> float:
        """Sustained throughput of the run (completed waves)."""
        return self.total_waves / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def requests_per_s(self) -> float:
        return (
            self.n_completed / self.elapsed_s if self.elapsed_s else 0.0
        )

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank latency percentile, in seconds."""
        return nearest_rank(self.latencies_s, quantile)

    @property
    def p50_s(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(0.99)


def run_closed_loop(
    server: SubmitTarget,
    netlist: Optional[WaveNetlist],
    requests: Sequence[WaveStream],
    *,
    clocking: Optional[ClockingScheme] = None,
    concurrency: Optional[int] = None,
    clients: int = DEFAULT_CLIENTS,
    request_timeout_s: float = REQUEST_TIMEOUT_S,
    deadline_s: Optional[float] = None,
    netlists: Optional[Sequence[WaveNetlist]] = None,
) -> LoadReport:
    """Drive *requests* (one wave stream each) through *server*.

    *concurrency* is the target number of requests in flight (default:
    every request at once); it is served by *clients* threads.  When the
    concurrency does not divide evenly, the remainder widens the first
    windows by one each, so ``LoadReport.concurrency`` always reports
    exactly what was requested instead of the silently rounded-down
    ``clients x burst``.  Results come back indexed by submission
    position regardless of scheduling, so callers can compare each
    report against its solo-run counterpart directly.

    Per-request latency is timestamped by an ``add_done_callback`` the
    moment the future resolves: within a window, the order the
    collection loop happens to observe resolutions cannot shift the
    percentiles.

    *request_timeout_s* bounds one future's client-side wait;
    *deadline_s* is forwarded to the server per submission (server-side
    deadline scheduling).  Timeouts, deadline expiries, queue-full
    rejections, and quarantined shard batches are all *recorded* in the
    returned :class:`LoadReport` rather than raised, while every other
    error still propagates.

    *netlists* (optional) assigns request *i* the netlist
    ``netlists[i]`` instead of the shared *netlist* — the multi-model
    mix the process-shard bench drives; within one burst, requests are
    grouped per netlist so each group still lands as one
    ``submit_many`` admission.
    """
    n_requests = len(requests)
    if n_requests == 0:
        return LoadReport([], [], 0.0, 0, 0, 0)
    if netlists is not None and len(netlists) != n_requests:
        raise ValueError("netlists must pair 1:1 with requests")
    if netlists is None and netlist is None:
        raise ValueError("provide a netlist (or per-request netlists)")
    concurrency = min(n_requests, concurrency or n_requests)
    n_clients = max(1, min(clients, concurrency))
    base_burst, extra = divmod(concurrency, n_clients)
    windows = [
        base_burst + (1 if client_id < extra else 0)
        for client_id in range(n_clients)
    ]
    reports: list[Optional[WaveSimulationReport]] = [None] * n_requests
    latencies: list[Optional[float]] = [None] * n_requests
    timed_out: list[int] = []
    expired: list[int] = []
    rejected: list[int] = []
    shard_failed: list[int] = []
    errors: list[BaseException] = []
    gate = threading.Event()

    def resolution_stamp(
        index: int, submitted_at: float
    ) -> "Callable[[Future[WaveSimulationReport]], None]":
        """Latency recorder attached as a done callback.

        Runs in whichever thread resolves the future, at resolution —
        so a window's later-collected requests never inherit the wait
        the collection loop spent blocked on earlier ones.  Slots of
        requests that resolved with an exception are filtered out at
        report-assembly time (their ``reports`` slot stays ``None``).
        """

        def record(future: "Future[WaveSimulationReport]") -> None:
            latencies[index] = time.perf_counter() - submitted_at

        return record

    def submit_chunk(
        chunk: Sequence[int], submitted_at: float
    ) -> "list[tuple[int, Future[WaveSimulationReport]]]":
        """Admit one burst window; returns (index, future) pairs.

        Backpressure is per admission: a ``submit_many`` refused by
        :class:`~repro.errors.ServerQueueFull` records its requests in
        ``rejected`` (an open-loop generator outrunning the queue is a
        load-test outcome, not a client bug) and the window carries on
        with whatever was admitted.
        """
        pairs: "list[tuple[int, Future[WaveSimulationReport]]]" = []
        for model, group in _netlist_runs(chunk, netlists, netlist):
            try:
                futures = server.submit_many(
                    model,
                    [requests[index] for index in group],
                    clocking=clocking,
                    deadline_s=deadline_s,
                )
            except ServerQueueFull:
                rejected.extend(group)
                continue
            for index, future in zip(group, futures):
                future.add_done_callback(
                    resolution_stamp(index, submitted_at)
                )
                pairs.append((index, future))
        return pairs

    def client(client_id: int) -> None:
        try:
            gate.wait()
            burst = windows[client_id]
            indices = range(client_id, n_requests, n_clients)
            for chunk_start in range(0, len(indices), burst):
                chunk = indices[chunk_start:chunk_start + burst]
                submitted_at = time.perf_counter()
                for index, future in submit_chunk(chunk, submitted_at):
                    try:
                        reports[index] = future.result(
                            timeout=request_timeout_s
                        )
                    except FutureTimeout:
                        timed_out.append(index)  # keep hammering
                    except DeadlineExceeded:
                        expired.append(index)
                    except ShardFailed:
                        shard_failed.append(index)  # quarantined batch
        except BaseException as error:  # surface in the caller thread
            errors.append(error)

    threads = [
        threading.Thread(
            target=client, args=(client_id,), name=f"loadgen-{client_id}"
        )
        for client_id in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    gate.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    # ``Future`` wakes result() waiters *before* running done
    # callbacks, so a client thread can observe (and join on) a report
    # whose resolution stamp is still being written by the resolving
    # thread — give those stragglers a bounded settle window
    settle_deadline_at = time.perf_counter() + 2.0
    for index, report in enumerate(reports):
        while (
            report is not None
            and latencies[index] is None
            and time.perf_counter() < settle_deadline_at
        ):
            time.sleep(0.0005)
    return LoadReport(
        reports=reports,
        latencies_s=[
            latency
            for latency, report in zip(latencies, reports)
            if report is not None and latency is not None
        ],
        elapsed_s=elapsed,
        total_waves=sum(
            len(stream)
            for stream, report in zip(requests, reports)
            if report is not None
        ),
        concurrency=sum(windows),
        clients=n_clients,
        timed_out=sorted(timed_out),
        expired=sorted(expired),
        rejected=sorted(rejected),
        shard_failed=sorted(shard_failed),
    )


@dataclass(frozen=True)
class OpenLoopScenario:
    """A seeded, replayable open-loop traffic description.

    Every derived quantity — arrival offsets, request sizes — is a pure
    function of the scenario fields, so persisting ``as_dict()`` (or
    just the seed and knobs) replays the identical schedule: a tail
    latency seen once is a test case forever.

    ``rate_rps`` is the *offered* request rate; ``arrival`` picks the
    process (``poisson`` — memoryless inter-arrivals at the offered
    rate; ``uniform`` — a metronome; ``bursty`` — Poisson epochs of
    ``burst`` simultaneous requests, epoch rate scaled to keep the mean
    offered rate).  ``size_mix`` is a ``(waves, weight)`` table sampled
    per request — see :data:`HEAVY_TAIL_SIZES` for a heavy-tailed
    default worth stressing coalescing with.
    """

    rate_rps: float
    n_requests: int
    arrival: str = "poisson"
    burst: int = 8
    seed: int = 0
    size_mix: tuple[tuple[int, float], ...] = ((32, 1.0),)

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        if self.n_requests <= 0:
            raise ValueError("n_requests must be > 0")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"arrival must be one of {ARRIVALS}, not {self.arrival!r}"
            )
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if not self.size_mix:
            raise ValueError("size_mix must not be empty")
        for waves, weight in self.size_mix:
            if waves < 1 or weight <= 0:
                raise ValueError(
                    "size_mix entries must be (waves >= 1, weight > 0)"
                )

    def offsets(self) -> list[float]:
        """Scheduled arrival offsets (seconds from run start), sorted."""
        rng = random.Random(f"{self.seed}:arrivals:{self.arrival}")
        if self.arrival == "uniform":
            return [index / self.rate_rps for index in range(self.n_requests)]
        if self.arrival == "poisson":
            offsets: list[float] = []
            at = 0.0
            for _ in range(self.n_requests):
                at += rng.expovariate(self.rate_rps)
                offsets.append(at)
            return offsets
        # bursty: whole epochs arrive at once; the epoch process is
        # Poisson at rate/burst so the mean offered rate is preserved
        offsets = []
        at = 0.0
        while len(offsets) < self.n_requests:
            at += rng.expovariate(self.rate_rps / self.burst)
            offsets.extend(
                [at] * min(self.burst, self.n_requests - len(offsets))
            )
        return offsets

    def sizes(self) -> list[int]:
        """Waves per request, sampled from ``size_mix`` (seeded)."""
        rng = random.Random(f"{self.seed}:sizes")
        return rng.choices(
            [waves for waves, _ in self.size_mix],
            weights=[weight for _, weight in self.size_mix],
            k=self.n_requests,
        )

    def describe(self) -> str:
        mix = ",".join(
            f"{waves}:{weight:g}" for waves, weight in self.size_mix
        )
        return (
            f"{self.arrival}@{self.rate_rps:g}rps x{self.n_requests} "
            f"burst={self.burst} sizes={mix} seed={self.seed}"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready scenario record; feeding it back replays the run."""
        return {
            "rate_rps": self.rate_rps,
            "n_requests": self.n_requests,
            "arrival": self.arrival,
            "burst": self.burst,
            "seed": self.seed,
            "size_mix": [list(entry) for entry in self.size_mix],
        }


@dataclass
class OpenLoopReport:
    """Outcome of one open-loop replay: SLO figures plus a ledger.

    ``latencies_s`` is indexed by arrival position and measured from
    each request's *scheduled* arrival instant (a lagging injector
    shows up as latency, not as a quietly reduced offered rate);
    ``None`` marks requests that did not complete.  The ledger must
    balance — every offered request is completed, timed out, expired,
    rejected, or quarantined, exactly once.
    """

    scenario: OpenLoopScenario
    reports: list[Optional[WaveSimulationReport]]  # per request
    latencies_s: list[Optional[float]]  # per request, scheduled->resolved
    elapsed_s: float  # run start -> last settlement
    total_waves: int  # waves across *completed* requests
    offered_waves: int  # waves across *all* scheduled requests
    max_inject_lag_s: float  # worst injector lateness vs the schedule
    timed_out: list[int] = field(default_factory=list)
    expired: list[int] = field(default_factory=list)
    rejected: list[int] = field(default_factory=list)
    shard_failed: list[int] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.reports)

    @property
    def n_completed(self) -> int:
        return sum(1 for report in self.reports if report is not None)

    @property
    def completed_latencies_s(self) -> list[float]:
        return [
            latency
            for latency, report in zip(self.latencies_s, self.reports)
            if report is not None and latency is not None
        ]

    @property
    def offered_rate_rps(self) -> float:
        return self.scenario.rate_rps

    @property
    def achieved_rate_rps(self) -> float:
        return self.n_completed / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def waves_per_s(self) -> float:
        return self.total_waves / self.elapsed_s if self.elapsed_s else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank latency percentile over completed requests."""
        return nearest_rank(self.completed_latencies_s, quantile)

    @property
    def p50_s(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(0.99)

    @property
    def p999_s(self) -> float:
        return self.latency_percentile(0.999)

    @property
    def max_latency_s(self) -> float:
        completed = self.completed_latencies_s
        return max(completed) if completed else 0.0

    def ledger(self) -> dict[str, int]:
        """The offered-traffic ledger (every request exactly once)."""
        return {
            "offered": self.n_requests,
            "completed": self.n_completed,
            "timed_out": len(self.timed_out),
            "expired": len(self.expired),
            "rejected": len(self.rejected),
            "shard_failed": len(self.shard_failed),
        }

    @property
    def ledger_balanced(self) -> bool:
        entries = self.ledger()
        return entries["offered"] == sum(
            entries[bucket]
            for bucket in (
                "completed", "timed_out", "expired", "rejected",
                "shard_failed",
            )
        )

    def as_dict(self) -> dict[str, object]:
        """SLO-style JSON document (replayable via ``scenario``)."""
        return {
            "scenario": self.scenario.as_dict(),
            "elapsed_s": round(self.elapsed_s, 6),
            "offered": {
                "requests": self.n_requests,
                "waves": self.offered_waves,
                "rate_rps": self.offered_rate_rps,
            },
            "achieved": {
                "completed": self.n_completed,
                "rate_rps": round(self.achieved_rate_rps, 3),
                "waves_per_s": round(self.waves_per_s, 1),
            },
            "latency_ms": {
                "p50": round(self.p50_s * 1e3, 3),
                "p99": round(self.p99_s * 1e3, 3),
                "p999": round(self.p999_s * 1e3, 3),
                "max": round(self.max_latency_s * 1e3, 3),
            },
            "ledger": {**self.ledger(), "balanced": self.ledger_balanced},
            "max_inject_lag_ms": round(self.max_inject_lag_s * 1e3, 3),
        }


def run_open_loop(
    target: SubmitTarget,
    netlist: Optional[WaveNetlist],
    scenario: OpenLoopScenario,
    *,
    clocking: Optional[ClockingScheme] = None,
    deadline_s: Optional[float] = None,
    request_timeout_s: float = REQUEST_TIMEOUT_S,
    netlists: Optional[Sequence[WaveNetlist]] = None,
    payloads: Optional[Sequence[WaveStream]] = None,
) -> OpenLoopReport:
    """Replay *scenario* against *target* without closing the loop.

    The injector sleeps to each scheduled arrival offset and submits
    without waiting for earlier results (arrivals sharing an offset —
    a bursty epoch — go out as one ``submit_many`` admission, grouped
    per netlist).  Completions are recorded by done callbacks; after
    the last injection the run waits up to *request_timeout_s* for the
    stragglers and books whatever is still unresolved as ``timed_out``.

    *payloads* (optional) supplies the request streams directly (paired
    1:1 with arrivals); by default each request's stream is generated
    as ``random_vectors(model.n_inputs, sizes[i], seed=f(seed, i))`` —
    fully determined by the scenario.  *netlists* assigns request *i*
    the netlist ``netlists[i]`` (multi-model mixes), otherwise the
    shared *netlist* serves every request.

    Queue-full rejections (synchronous or future-borne), deadline
    expiries, and quarantined batches are ledger outcomes, not errors;
    anything else raises.  The returned
    :class:`OpenLoopReport.ledger_balanced` is the invariant callers
    should assert.
    """
    n_requests = scenario.n_requests
    if netlists is not None and len(netlists) != n_requests:
        raise ValueError("netlists must pair 1:1 with scenario arrivals")
    if netlists is None and netlist is None:
        raise ValueError("provide a netlist (or per-request netlists)")
    offsets = scenario.offsets()
    sizes = scenario.sizes()
    if payloads is not None:
        if len(payloads) != n_requests:
            raise ValueError("payloads must pair 1:1 with scenario arrivals")
        streams = list(payloads)
    else:
        models = netlists if netlists is not None else [netlist] * n_requests
        streams = [
            random_vectors(
                models[index].n_inputs,  # type: ignore[union-attr]
                sizes[index],
                seed=scenario.seed * 1_000_003 + index,
            )
            for index in range(n_requests)
        ]

    reports: list[Optional[WaveSimulationReport]] = [None] * n_requests
    latencies: list[Optional[float]] = [None] * n_requests
    settled = [False] * n_requests
    timed_out: list[int] = []
    expired: list[int] = []
    rejected: list[int] = []
    shard_failed: list[int] = []
    errors: list[BaseException] = []
    outstanding = 0
    done_cond = threading.Condition()

    def resolution_recorder(
        index: int, scheduled_at: float
    ) -> "Callable[[Future[WaveSimulationReport]], None]":
        def record(future: "Future[WaveSimulationReport]") -> None:
            nonlocal outstanding
            resolved_at = time.perf_counter()
            with done_cond:
                if settled[index]:
                    return  # already booked as timed_out by the reaper
                settled[index] = True
                outstanding -= 1
                if future.cancelled():
                    # a server closing under the generator cancels
                    # pending work: booked as rejected (refused, not
                    # simulated) so the ledger still balances
                    rejected.append(index)
                else:
                    error = future.exception()
                    if error is None:
                        reports[index] = future.result()
                        latencies[index] = resolved_at - scheduled_at
                    elif isinstance(error, DeadlineExceeded):
                        expired.append(index)
                    elif isinstance(error, ShardFailed):
                        shard_failed.append(index)
                    elif isinstance(error, ServerQueueFull):
                        rejected.append(index)
                    else:
                        errors.append(error)
                done_cond.notify_all()

        return record

    # group arrivals sharing an offset (bursty epochs) into one window
    windows: "list[tuple[float, list[int]]]" = []
    for index, offset in enumerate(offsets):
        if windows and windows[-1][0] == offset:
            windows[-1][1].append(index)
        else:
            windows.append((offset, [index]))

    run_started_at = time.perf_counter()
    max_inject_lag_s = 0.0
    for offset, arrivals in windows:
        wait_s = run_started_at + offset - time.perf_counter()
        if wait_s > 0:
            time.sleep(wait_s)
        else:
            max_inject_lag_s = max(max_inject_lag_s, -wait_s)
        for model, group in _netlist_runs(arrivals, netlists, netlist):
            try:
                futures = target.submit_many(
                    model,
                    [streams[index] for index in group],
                    clocking=clocking,
                    deadline_s=deadline_s,
                )
            except ServerQueueFull:
                with done_cond:
                    for index in group:
                        settled[index] = True
                        rejected.append(index)
                continue
            with done_cond:
                outstanding += len(futures)
            for index, future in zip(group, futures):
                future.add_done_callback(
                    resolution_recorder(
                        index, run_started_at + offsets[index]
                    )
                )

    with done_cond:
        grace_deadline_at = time.perf_counter() + request_timeout_s
        while outstanding > 0:
            remaining_s = grace_deadline_at - time.perf_counter()
            if remaining_s <= 0:
                break
            done_cond.wait(remaining_s)
        for index in range(n_requests):
            if not settled[index]:
                settled[index] = True
                timed_out.append(index)
    elapsed_s = time.perf_counter() - run_started_at
    if errors:
        raise errors[0]
    return OpenLoopReport(
        scenario=scenario,
        reports=reports,
        latencies_s=latencies,
        elapsed_s=elapsed_s,
        total_waves=sum(
            sizes[index]
            for index, report in enumerate(reports)
            if report is not None
        ),
        offered_waves=sum(sizes),
        max_inject_lag_s=max_inject_lag_s,
        timed_out=sorted(timed_out),
        expired=sorted(expired),
        rejected=sorted(rejected),
        shard_failed=sorted(shard_failed),
    )

class StreamTarget(Protocol):
    """Anything that can open streaming sessions: the in-process
    :class:`~repro.serve.server.SimulationServer` or the socket tier's
    :class:`~repro.serve.client.SimulationClient` — both expose the
    same ``open_stream`` surface (the session objects differ only in
    their close keyword, which the generator leaves defaulted)."""

    def open_stream(
        self,
        netlist: WaveNetlist,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
    ) -> object:
        ...


@dataclass
class StreamingReport:
    """Outcome of one streaming-session run (``--stream`` mode).

    ``reports[s][f]`` is session *s*'s feed *f* — ``None`` exactly when
    that feed failed typed (its ``(session, feed)`` pair is in
    ``failed``).  Per-feed latency runs from ``feed()`` submission to
    the future's resolution, stamped by a done callback.  ``replays``
    totals the sessions' feed-log replays (in-process sessions only;
    wire sessions report 0 — the client has no metrics surface).
    """

    reports: list[list[Optional[WaveSimulationReport]]]
    latencies_s: list[float]  # completed feeds, all sessions
    elapsed_s: float  # gate release -> last session closed
    total_waves: int  # waves across *completed* feeds
    n_sessions: int
    feeds_per_session: int
    replays: int
    failed: list[tuple[int, int]] = field(default_factory=list)

    @property
    def n_feeds(self) -> int:
        return self.n_sessions * self.feeds_per_session

    @property
    def n_completed(self) -> int:
        return sum(
            1
            for session in self.reports
            for report in session
            if report is not None
        )

    @property
    def waves_per_s(self) -> float:
        """Sustained throughput of the run (completed waves)."""
        return self.total_waves / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def feeds_per_s(self) -> float:
        return self.n_completed / self.elapsed_s if self.elapsed_s else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank feed-latency percentile, in seconds."""
        return nearest_rank(self.latencies_s, quantile)

    @property
    def p50_s(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(0.99)


def run_streaming(
    target: StreamTarget,
    netlist: WaveNetlist,
    *,
    sessions: int = 1,
    feeds_per_session: int = 10,
    waves_per_feed: int = 64,
    clocking: Optional[ClockingScheme] = None,
    deadline_s: Optional[float] = None,
    request_timeout_s: float = REQUEST_TIMEOUT_S,
    seed: int = 0,
    payloads: Optional[Sequence[Sequence[WaveStream]]] = None,
) -> StreamingReport:
    """Drive *sessions* concurrent streaming sessions through *target*.

    Each session opens one stream, feeds *feeds_per_session* chunks of
    *waves_per_feed* waves back to back (no think time — the feeds
    pipeline inside the warm per-plan state, which is the point of the
    streaming tier), then drain-closes.  Feed payloads default to
    ``random_vectors`` seeded per ``(seed, session, feed)`` so a run is
    replayable; *payloads* supplies them directly (``payloads[s][f]``),
    in which case the session/feed shape follows the payload table.

    Typed per-feed failures — deadline expiry, a quarantined stream, a
    lost connection — are recorded in ``StreamingReport.failed`` (their
    ``reports`` slot stays ``None``) rather than raised, like the other
    generators; anything else propagates.
    """
    if payloads is not None:
        # the payload table is authoritative for the run's shape
        sessions = len(payloads)
        feeds_per_session = len(payloads[0]) if payloads else 0
        if any(len(chunk) != feeds_per_session for chunk in payloads):
            raise ValueError("payload sessions must share one feed count")
    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    if feeds_per_session < 1:
        raise ValueError("feeds_per_session must be >= 1")

    def chunk(session_index: int, feed_index: int) -> WaveStream:
        if payloads is not None:
            return payloads[session_index][feed_index]
        return random_vectors(
            netlist.n_inputs,
            waves_per_feed,
            seed=seed * 1_000_003
            + session_index * feeds_per_session
            + feed_index,
        )

    reports: list[list[Optional[WaveSimulationReport]]] = [
        [None] * feeds_per_session for _ in range(sessions)
    ]
    latencies: list[list[Optional[float]]] = [
        [None] * feeds_per_session for _ in range(sessions)
    ]
    failed: list[tuple[int, int]] = []
    replay_counts = [0] * sessions
    errors: list[BaseException] = []
    lock = threading.Lock()
    gate = threading.Event()

    def resolution_stamp(
        session_index: int, feed_index: int, submitted_at: float
    ) -> "Callable[[Future[WaveSimulationReport]], None]":
        def record(future: "Future[WaveSimulationReport]") -> None:
            latencies[session_index][feed_index] = (
                time.perf_counter() - submitted_at
            )

        return record

    def session_worker(session_index: int) -> None:
        try:
            gate.wait()
            stream = target.open_stream(netlist, clocking=clocking)
            futures: "list[Optional[Future[WaveSimulationReport]]]" = []
            try:
                for feed_index in range(feeds_per_session):
                    try:
                        submitted_at = time.perf_counter()
                        future = stream.feed(
                            chunk(session_index, feed_index),
                            deadline_s=deadline_s,
                        )
                    except (SessionClosed, ConnectionLost):
                        # quarantined / lost mid-schedule: every later
                        # feed of this session fails the same way
                        with lock:
                            failed.append((session_index, feed_index))
                        futures.append(None)
                        continue
                    future.add_done_callback(
                        resolution_stamp(
                            session_index, feed_index, submitted_at
                        )
                    )
                    futures.append(future)
            finally:
                try:
                    stream.close()  # drain: resolves every feed future
                except ServeError:
                    pass  # lost/quarantined: futures are already typed
            for feed_index, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    reports[session_index][feed_index] = future.result(
                        timeout=request_timeout_s
                    )
                except (
                    FutureTimeout,
                    DeadlineExceeded,
                    SessionClosed,
                    ShardFailed,
                    ConnectionLost,
                ):
                    with lock:
                        failed.append((session_index, feed_index))
            metrics = getattr(stream, "metrics", None)
            if callable(metrics):
                replay_counts[session_index] = int(
                    metrics().get("replays", 0)
                )
        except BaseException as error:  # surface in the caller thread
            errors.append(error)

    threads = [
        threading.Thread(
            target=session_worker,
            args=(session_index,),
            name=f"loadgen-stream-{session_index}",
        )
        for session_index in range(sessions)
    ]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    gate.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return StreamingReport(
        reports=reports,
        latencies_s=[
            latency
            for session_latencies, session_reports in zip(
                latencies, reports
            )
            for latency, report in zip(session_latencies, session_reports)
            if report is not None and latency is not None
        ],
        elapsed_s=elapsed,
        total_waves=sum(
            report.waves_injected
            for session in reports
            for report in session
            if report is not None
        ),
        n_sessions=sessions,
        feeds_per_session=feeds_per_session,
        replays=sum(replay_counts),
        failed=sorted(failed),
    )
