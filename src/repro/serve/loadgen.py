"""Closed-loop load generator for the serving layer.

Shared by ``repro serve-bench`` and ``benchmarks/bench_serving.py`` so
the CLI demo and the CI-gated bench measure the exact same thing.

The generator models multiplexed serving clients: *clients* threads each
keep a window of *burst* requests in flight (submitted together through
:meth:`~repro.serve.server.SimulationServer.submit_many`, collected in
FIFO order, then the next burst goes out), so the total in-flight
request count is ``clients x burst = concurrency`` — closed loop at a
fixed concurrency level.  Per-request latency runs from the burst's
submission to that request's resolved future, queueing and batching
included.  All client threads are started *before* the clock and
released together through an event, so thread spawn cost never pollutes
the throughput measurement.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.simulator import WaveSimulationReport
from .server import SimulationServer

#: Default client-thread count (windows widen to reach the requested
#: concurrency; more OS threads would only add GIL churn).
DEFAULT_CLIENTS = 16

#: Safety bound for one request's future under load (seconds); hitting
#: it means a wedged shard, which should fail loudly, not hang the run.
REQUEST_TIMEOUT_S = 300.0


@dataclass
class LoadReport:
    """Outcome of one closed-loop run against a server."""

    reports: list[WaveSimulationReport]  # per request, submission order
    latencies_s: list[float]  # burst submit -> resolved future
    elapsed_s: float  # gate release -> last client done
    total_waves: int
    concurrency: int  # requests in flight (clients x burst)
    clients: int

    @property
    def waves_per_s(self) -> float:
        """Sustained throughput of the run."""
        return self.total_waves / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def requests_per_s(self) -> float:
        return (
            len(self.reports) / self.elapsed_s if self.elapsed_s else 0.0
        )

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank latency percentile, in seconds."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(1, int(round(quantile * len(ordered))))
        return ordered[min(len(ordered), rank) - 1]

    @property
    def p50_s(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(0.99)


def run_closed_loop(
    server: SimulationServer,
    netlist,
    requests: Sequence[Sequence[Sequence[bool]]],
    *,
    clocking: Optional[ClockingScheme] = None,
    concurrency: Optional[int] = None,
    clients: int = DEFAULT_CLIENTS,
) -> LoadReport:
    """Drive *requests* (one wave stream each) through *server*.

    *concurrency* is the target number of requests in flight (default:
    every request at once); it is served by *clients* threads whose
    per-burst window is ``concurrency / clients``.  Results come back
    indexed by submission position regardless of scheduling, so callers
    can compare each report against its solo-run counterpart directly.
    """
    n_requests = len(requests)
    if n_requests == 0:
        return LoadReport([], [], 0.0, 0, 0, 0)
    concurrency = min(n_requests, concurrency or n_requests)
    n_clients = max(1, min(clients, concurrency))
    burst = max(1, concurrency // n_clients)
    reports: list[Optional[WaveSimulationReport]] = [None] * n_requests
    latencies: list[float] = [0.0] * n_requests
    errors: list[BaseException] = []
    gate = threading.Event()

    def client(client_id: int) -> None:
        try:
            gate.wait()
            indices = range(client_id, n_requests, n_clients)
            for chunk_start in range(0, len(indices), burst):
                chunk = indices[chunk_start:chunk_start + burst]
                started = time.perf_counter()
                futures = server.submit_many(
                    netlist,
                    [requests[index] for index in chunk],
                    clocking=clocking,
                )
                for index, future in zip(chunk, futures):
                    reports[index] = future.result(
                        timeout=REQUEST_TIMEOUT_S
                    )
                    latencies[index] = time.perf_counter() - started
        except BaseException as error:  # surface in the caller thread
            errors.append(error)

    threads = [
        threading.Thread(
            target=client, args=(client_id,), name=f"loadgen-{client_id}"
        )
        for client_id in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    gate.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return LoadReport(
        reports=reports,  # type: ignore[arg-type]  # all filled or raised
        latencies_s=latencies,
        elapsed_s=elapsed,
        total_waves=sum(len(stream) for stream in requests),
        concurrency=n_clients * burst,
        clients=n_clients,
    )
