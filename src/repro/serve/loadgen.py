"""Closed-loop load generator for the serving layer.

Shared by ``repro serve-bench`` and ``benchmarks/bench_serving.py`` so
the CLI demo and the CI-gated bench measure the exact same thing.

The generator models multiplexed serving clients: *clients* threads each
keep a window of *burst* requests in flight (submitted together through
:meth:`~repro.serve.server.SimulationServer.submit_many`, collected in
FIFO order, then the next burst goes out), so the total in-flight
request count is ``clients x burst = concurrency`` — closed loop at a
fixed concurrency level.  Per-request latency runs from the burst's
submission to that request's resolved future, queueing and batching
included.  All client threads are started *before* the clock and
released together through an event, so thread spawn cost never pollutes
the throughput measurement.

Failure accounting: a request that outlives *request_timeout_s*, its
server-side deadline, queue-full backpressure, or a quarantined shard
batch does **not** raise out of the client thread — it is recorded in
the :class:`LoadReport` (``timed_out`` / ``expired`` / ``rejected`` /
``shard_failed`` index lists, a ``None`` placeholder in ``reports``) and
the run carries on, the way a real load generator keeps hammering
through stragglers and brownouts.  Any other error (validation,
capacity misuse, engine failure) still propagates to the caller.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from ..core.wavepipe.simulator import WaveSimulationReport
from ..errors import DeadlineExceeded, ServerQueueFull, ShardFailed
from .server import SimulationServer

#: Default client-thread count (windows widen to reach the requested
#: concurrency; more OS threads would only add GIL churn).
DEFAULT_CLIENTS = 16

#: Default bound for one request's future under load (seconds); hitting
#: it means a wedged shard.  Overridable per run through
#: :func:`run_closed_loop`'s ``request_timeout_s`` — timed-out requests
#: are recorded in the :class:`LoadReport`, not raised.
REQUEST_TIMEOUT_S = 300.0


@dataclass
class LoadReport:
    """Outcome of one closed-loop run against a server.

    ``reports`` is indexed by submission position; a slot is ``None``
    exactly when that request timed out client-side (its index is in
    ``timed_out``), expired server-side (``expired``), was refused by
    queue-full backpressure (``rejected``), or was quarantined with its
    shard batch (``shard_failed``).  Latency and throughput figures
    cover completed requests only.
    """

    reports: list[Optional[WaveSimulationReport]]  # per request
    latencies_s: list[float]  # completed requests, submission order
    elapsed_s: float  # gate release -> last client done
    total_waves: int  # waves across *completed* requests
    concurrency: int  # requests in flight (clients x burst)
    clients: int
    timed_out: list[int] = field(default_factory=list)
    expired: list[int] = field(default_factory=list)
    rejected: list[int] = field(default_factory=list)
    shard_failed: list[int] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        """Requests driven, completed or not."""
        return len(self.reports)

    @property
    def n_completed(self) -> int:
        """Requests whose future resolved with a report."""
        return sum(1 for report in self.reports if report is not None)

    @property
    def waves_per_s(self) -> float:
        """Sustained throughput of the run (completed waves)."""
        return self.total_waves / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def requests_per_s(self) -> float:
        return (
            self.n_completed / self.elapsed_s if self.elapsed_s else 0.0
        )

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank latency percentile, in seconds."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(1, int(round(quantile * len(ordered))))
        return ordered[min(len(ordered), rank) - 1]

    @property
    def p50_s(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def p99_s(self) -> float:
        return self.latency_percentile(0.99)


def run_closed_loop(
    server: SimulationServer,
    netlist: WaveNetlist,
    requests: Sequence[Sequence[Sequence[bool]]],
    *,
    clocking: Optional[ClockingScheme] = None,
    concurrency: Optional[int] = None,
    clients: int = DEFAULT_CLIENTS,
    request_timeout_s: float = REQUEST_TIMEOUT_S,
    deadline_s: Optional[float] = None,
    netlists: Optional[Sequence[WaveNetlist]] = None,
) -> LoadReport:
    """Drive *requests* (one wave stream each) through *server*.

    *concurrency* is the target number of requests in flight (default:
    every request at once); it is served by *clients* threads whose
    per-burst window is ``concurrency / clients``.  Results come back
    indexed by submission position regardless of scheduling, so callers
    can compare each report against its solo-run counterpart directly.

    *request_timeout_s* bounds one future's client-side wait;
    *deadline_s* is forwarded to the server per submission (server-side
    deadline scheduling).  Timeouts, deadline expiries, queue-full
    rejections, and quarantined shard batches are all *recorded* in the
    returned :class:`LoadReport` rather than raised, while every other
    error still propagates.

    *netlists* (optional) assigns request *i* the netlist
    ``netlists[i]`` instead of the shared *netlist* — the multi-model
    mix the process-shard bench drives; within one burst, requests are
    grouped per netlist so each group still lands as one
    ``submit_many`` admission.
    """
    n_requests = len(requests)
    if n_requests == 0:
        return LoadReport([], [], 0.0, 0, 0, 0)
    if netlists is not None and len(netlists) != n_requests:
        raise ValueError("netlists must pair 1:1 with requests")
    concurrency = min(n_requests, concurrency or n_requests)
    n_clients = max(1, min(clients, concurrency))
    burst = max(1, concurrency // n_clients)
    reports: list[Optional[WaveSimulationReport]] = [None] * n_requests
    latencies: list[Optional[float]] = [None] * n_requests
    timed_out: list[int] = []
    expired: list[int] = []
    rejected: list[int] = []
    shard_failed: list[int] = []
    errors: list[BaseException] = []
    gate = threading.Event()

    def submit_chunk(
        chunk: Sequence[int],
    ) -> "list[tuple[int, Future[WaveSimulationReport]]]":
        """Admit one burst window; returns (index, future) pairs.

        Backpressure is per admission: a ``submit_many`` refused by
        :class:`~repro.errors.ServerQueueFull` records its requests in
        ``rejected`` (an open-loop generator outrunning the queue is a
        load-test outcome, not a client bug) and the window carries on
        with whatever was admitted.
        """
        if netlists is None:
            try:
                futures = server.submit_many(
                    netlist,
                    [requests[index] for index in chunk],
                    clocking=clocking,
                    deadline_s=deadline_s,
                )
            except ServerQueueFull:
                rejected.extend(chunk)
                return []
            return list(zip(chunk, futures))
        pairs: "list[tuple[int, Future[WaveSimulationReport]]]" = []
        position = 0
        while position < len(chunk):  # group runs of one netlist
            group = [chunk[position]]
            model = netlists[chunk[position]]
            while (
                position + len(group) < len(chunk)
                and netlists[chunk[position + len(group)]] is model
            ):
                group.append(chunk[position + len(group)])
            try:
                futures = server.submit_many(
                    model,
                    [requests[index] for index in group],
                    clocking=clocking,
                    deadline_s=deadline_s,
                )
            except ServerQueueFull:
                rejected.extend(group)
            else:
                pairs.extend(zip(group, futures))
            position += len(group)
        return pairs

    def client(client_id: int) -> None:
        try:
            gate.wait()
            indices = range(client_id, n_requests, n_clients)
            for chunk_start in range(0, len(indices), burst):
                chunk = indices[chunk_start:chunk_start + burst]
                started = time.perf_counter()
                for index, future in submit_chunk(chunk):
                    try:
                        reports[index] = future.result(
                            timeout=request_timeout_s
                        )
                        latencies[index] = (
                            time.perf_counter() - started
                        )
                    except FutureTimeout:
                        timed_out.append(index)  # keep hammering
                    except DeadlineExceeded:
                        expired.append(index)
                    except ShardFailed:
                        shard_failed.append(index)  # quarantined batch
        except BaseException as error:  # surface in the caller thread
            errors.append(error)

    threads = [
        threading.Thread(
            target=client, args=(client_id,), name=f"loadgen-{client_id}"
        )
        for client_id in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    gate.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return LoadReport(
        reports=reports,
        latencies_s=[
            latency for latency in latencies if latency is not None
        ],
        elapsed_s=elapsed,
        total_waves=sum(
            len(stream)
            for stream, report in zip(requests, reports)
            if report is not None
        ),
        concurrency=n_clients * burst,
        clients=n_clients,
        timed_out=sorted(timed_out),
        expired=sorted(expired),
        rejected=sorted(rejected),
        shard_failed=sorted(shard_failed),
    )
