"""Micro-batching simulation server over the packed wave engine.

:class:`SimulationServer` turns the one-shot
:func:`~repro.core.wavepipe.simulator.simulate_streams` API into a
serving subsystem — the deployment model the paper's wave pipelining
exists for: many independent requests amortized over one pipeline sweep.

Architecture
------------
**Bounded admission.**  :meth:`SimulationServer.submit` validates the
request, warms the per-``WaveNetlist.version`` compiled-plan cache
(:func:`~repro.core.wavepipe.kernels.compile_netlist` — shared across
batches, requests, and shards), and enqueues it into a bounded
:class:`~repro.serve.queue.RequestQueue`; past ``max_pending`` requests
the submit raises :class:`~repro.errors.ServerQueueFull` (backpressure —
the caller retries after draining futures).  The caller immediately gets
a :class:`concurrent.futures.Future` that resolves to the request's own
:class:`~repro.core.wavepipe.simulator.WaveSimulationReport`.

**Per-netlist coalescing.**  Pending requests are grouped per
(netlist, version, phase count, injection mode); the
:class:`~repro.serve.batcher.Batcher` drains the groups round-robin and
coalesces each into one
:func:`~repro.core.wavepipe.batch.simulate_streams_packed` pass, sized by
the packed engine's own lane planner
(:func:`~repro.core.wavepipe.batch.plan_stream_batch`).  Batching **never
changes results**: every stream in a packed pass gets its own lane group,
so each report is bit-identical to a solo ``simulate_waves`` run — the
property ``tests/test_serving.py`` locks down.

**Shard dispatch.**  ``shards`` worker threads each serve one group at a
time; a group being simulated is marked busy so two shards never split
one netlist's queue (order-preserving), while *independent* netlist
groups simulate concurrently.  A shard that seeds a non-full batch may
*linger* — up to ``max_linger_steps`` waits of ``linger_wait_s`` each —
to coalesce requests that arrive moments later (the classic micro-batch
latency/throughput knob).

**Sync and async façades.**  ``submit`` / ``Future.result`` is the
thread-world API; :meth:`SimulationServer.submit_async` awaits the same
future on an asyncio loop.  :meth:`SimulationServer.simulate` is the
one-call convenience (submit + result).

**Deadline scheduling.**  ``submit(..., deadline_s=...)`` (or a
server-wide ``default_deadline_s``) attaches a deadline to a request.
Expired requests are dropped at batch-formation time — before any
packing or kernel work — and their futures fail with
:class:`~repro.errors.DeadlineExceeded` (the ``expired`` metric counts
them); pending groups are drained earliest-deadline-first whenever any
queued request carries a deadline (see
:meth:`~repro.serve.queue.RequestQueue.next_key`).

**Thread or process shards.**  By default the server is *thread*-sharded:
the packed kernels spend their time in numpy ufuncs that release the
GIL, so independent groups overlap on multicore hosts and one shared
compiled-plan cache serves every shard.  ``process_shards=N`` escapes
the GIL entirely: batches are routed (sticky per netlist group) to a
:class:`~repro.serve.shards.ProcessShardPool` of worker processes over
the numpy wire format, each worker holding its own compile cache; dead
workers are respawned and their batch retried, bit-identically.  The
batcher, deadline logic, and metrics stay in the parent either way.

**Supervision and chaos.**  Process shards are supervised (see
:mod:`repro.serve.shards` and :mod:`repro.serve.supervisor`): hung
workers are detected by ``dispatch_timeout_s`` and SIGKILL-reaped,
respawns back off exponentially, a crash-looping slot's circuit breaker
takes it out of rotation (sticky groups reroute to the next healthy
slot), and a batch that exhausts its retry budget is quarantined — only
its futures fail, with :class:`~repro.errors.ShardFailed`, while the
server keeps serving.  :meth:`SimulationServer.health` snapshots the
whole story; a seeded :class:`~repro.serve.faults.FaultPlan` (``faults=``
here, ``--faults`` on the serve bench) injects reproducible chaos
through the same paths; :func:`graceful_drain` turns SIGTERM into
serve-everything-admitted-then-stop.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Iterator, Optional, Sequence

import numpy as np

from ..core.wavepipe.batch import (
    PackedSession,
    open_packed_session,
    simulate_streams_packed,
)
from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from ..core.wavepipe.kernels import compile_netlist
from ..core.wavepipe.simulator import (
    WaveSimulationReport,
    _validate_vectors,
)
from ..errors import (
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    ServerQueueFull,
    SessionClosed,
    ShardFailed,
    SimulationError,
)
from .batcher import (
    DEFAULT_MAX_BATCH_REQUESTS,
    Batch,
    Batcher,
    adaptive_max_batch_waves,
)
from .faults import FaultPlan
from .metrics import ServerMetrics
from .queue import GroupKey, RequestQueue, SimulationRequest, WaveStream
from .shards import ProcessShardPool, SessionWorkerLost
from .supervisor import SupervisorConfig

#: Default bound on admitted-but-undispatched requests (backpressure).
DEFAULT_MAX_PENDING = 1024

#: Default linger rounds a non-full batch waits for late arrivals.
DEFAULT_MAX_LINGER_STEPS = 1

#: Default upper bound of one linger round, in seconds.
DEFAULT_LINGER_WAIT_S = 0.002

#: Safety margin the deadline-aware linger keeps ahead of the most
#: urgent queued/batched deadline: lingering stops once the slack to
#: that deadline falls under this margin, so a request admitted with a
#: tight-but-servable deadline is dispatched instead of expiring in the
#: linger wait.
DEADLINE_LINGER_MARGIN_S = 0.005

#: How many worker losses one streaming session absorbs — each paid
#: back by a full feed-log replay — before the session is quarantined
#: with :class:`~repro.errors.ShardFailed` (mirrors the batch path's
#: retry budget: a session whose feeds keep killing workers is the
#: likely culprit).
SESSION_REPLAY_BUDGET = 3

#: Bound on the server's per-netlist plan-reuse records: serving
#: netlist-churn traffic must not pin every netlist (and its weakly
#: cached compiled tables) forever.  Eviction only forgets accounting —
#: a re-submission simply counts one fresh miss; in-flight requests
#: keep their own strong netlist references regardless.
PLAN_CACHE_LIMIT = 256


class SimulationServer:
    """Micro-batching request scheduler over ``simulate_streams_packed``.

    Parameters
    ----------
    shards:
        Worker threads.  Each serves one netlist group at a time;
        sharding pays off exactly when traffic spans several netlists
        (or clocking configurations) — single-netlist traffic is
        order-preserved on one shard and extra shards idle.
    max_pending:
        Queue bound; :meth:`submit` raises
        :class:`~repro.errors.ServerQueueFull` past it.
    max_batch_requests / max_batch_waves:
        Coalescing caps of one packed pass.  ``max_batch_waves=None``
        (default) derives the cap from the lane planner's word budget
        via :func:`~repro.serve.batcher.adaptive_max_batch_waves` (see
        :mod:`repro.serve.batcher` for the rationale).
    max_linger_steps / linger_wait_s:
        How long a non-full batch waits for late arrivals: linger
        rounds are condition waits of at most ``linger_wait_s`` seconds
        each, and the batch dispatches after ``max_linger_steps``
        *consecutive rounds that coalesced nothing* (rounds that grew
        the batch reset the budget, so an in-flight burst is absorbed
        whole).  ``0`` steps dispatches immediately (lowest latency,
        least coalescing); the idle-traffic latency cost is bounded by
        ``max_linger_steps * linger_wait_s``.
    default_deadline_s:
        Server-wide request timeout: every submission without an
        explicit ``deadline_s`` inherits this budget (``None`` = no
        deadline).  A request still queued past its deadline is dropped
        before packing and its future fails with
        :class:`~repro.errors.DeadlineExceeded`.
    process_shards:
        ``0`` (default) keeps PR-4 thread sharding.  ``N > 0`` spawns a
        :class:`~repro.serve.shards.ProcessShardPool` of N worker
        processes and dispatches every batch there (sticky per netlist
        group); the shard *thread* count is raised to at least N so
        every worker can be driven concurrently.
    dispatch_timeout_s:
        Process-shard hang detection: a worker that neither replies nor
        dies within this many seconds of a dispatch is SIGKILL-reaped
        and the batch retried under its budget (``None`` = no hang
        detection; worker *death* is always detected promptly).
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` — seeded chaos
        injected into the dispatch path (process shards exercise the
        full kill/hang/EOF surface; thread shards degrade to
        slow/``ShardFailed`` stand-ins).  Testing and benchmarking
        only.
    supervision:
        :class:`~repro.serve.supervisor.SupervisorConfig` overriding
        the process-shard backoff/breaker/retry-budget policy.
    clocking / pipelined / backend / track:
        Server-wide simulation defaults; ``clocking`` and ``pipelined``
        can be overridden per request in :meth:`submit` (the group key
        keeps incompatible requests apart), ``backend``/``track`` select
        the kernel variant for every batch.
    warm_netlists:
        Netlists to pre-compile before the first request: in thread
        mode their plans are built here, at construction; with process
        shards they are additionally shipped to every worker at spawn
        (and re-shipped on every supervised respawn), so the first
        batch after a restart never pays the compile miss.  The server
        pins references to them for its lifetime.
    start:
        Spawn the shard threads immediately (default).  ``start=False``
        leaves the server paused — submissions queue up (backpressure
        included) until :meth:`start` — which the tests use to pin
        queue-full behaviour deterministically.
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_batch_requests: int = DEFAULT_MAX_BATCH_REQUESTS,
        max_batch_waves: Optional[int] = None,
        max_linger_steps: int = DEFAULT_MAX_LINGER_STEPS,
        linger_wait_s: float = DEFAULT_LINGER_WAIT_S,
        default_deadline_s: Optional[float] = None,
        process_shards: int = 0,
        dispatch_timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        supervision: Optional[SupervisorConfig] = None,
        clocking: Optional[ClockingScheme] = None,
        pipelined: bool = True,
        backend: Optional[str] = None,
        track: Optional[bool] = None,
        warm_netlists: Optional[Sequence[WaveNetlist]] = None,
        start: bool = True,
    ) -> None:
        if shards < 1:
            raise ServeError("a server needs at least one shard")
        if max_linger_steps < 0:
            raise ServeError("max_linger_steps must be >= 0")
        if linger_wait_s < 0:
            raise ServeError("linger_wait_s must be >= 0")
        if default_deadline_s is not None and default_deadline_s < 0:
            raise ServeError("default_deadline_s must be >= 0")
        if process_shards < 0:
            raise ServeError("process_shards must be >= 0")
        # every worker process needs its own dispatching thread to be
        # driven concurrently (the thread blocks on the worker's pipe)
        self._shards = max(int(shards), int(process_shards))
        self._clocking = clocking or ClockingScheme()
        self._pipelined = bool(pipelined)
        self._backend = backend
        self._track = track
        self._max_linger_steps = int(max_linger_steps)
        self._linger_wait_s = float(linger_wait_s)
        self._default_deadline_s = (
            None if default_deadline_s is None else float(default_deadline_s)
        )

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue = RequestQueue(max_pending)
        self._batcher = Batcher(
            self._queue,
            max_batch_requests,
            # None derives the wave cap from the lane planner's own word
            # budget instead of the static default (see batcher module)
            adaptive_max_batch_waves()
            if max_batch_waves is None
            else max_batch_waves,
        )
        self._busy: set[GroupKey] = set()
        #: (netlist id, phase count) -> (netlist ref, version): the
        #: LRU-bounded record behind the plan-cache hit metrics; the
        #: strong netlist reference pins the weak kernel-compile cache
        #: entry (and keeps object ids stable) while the entry lives,
        #: and :data:`PLAN_CACHE_LIMIT` keeps netlist churn bounded.
        self._plans: "OrderedDict[tuple[int, int], tuple[WaveNetlist, int]]" = (
            OrderedDict()
        )
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closing = False
        self._sessions: "dict[str, ServerSession]" = {}
        self._session_seq = itertools.count(1)
        self.metrics = ServerMetrics()
        self._faults = faults
        # pin the warm netlists: the compile cache is weak-keyed and
        # the pool's warm keys embed object ids, so the server must
        # hold strong references for as long as it may serve them
        self._warm_netlists: list[WaveNetlist] = list(warm_netlists or [])
        for netlist in self._warm_netlists:
            compile_netlist(netlist, self._clocking)
        self._pool: Optional[ProcessShardPool] = None
        if process_shards:
            self._pool = ProcessShardPool(
                int(process_shards),
                on_restart=self.metrics.record_worker_restart,
                on_hang=self.metrics.record_hung_worker,
                on_breaker_open=self.metrics.record_breaker_open,
                dispatch_timeout_s=dispatch_timeout_s,
                faults=faults,
                supervision=supervision,
                warm_netlists=self._warm_netlists,
                warm_n_phases=self._clocking.n_phases,
            )
        if start:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the shard workers (idempotent)."""
        with self._cond:
            if self._closing:
                raise ServerClosed("cannot start a closed server")
            if self._started:
                return
            self._started = True
            for index in range(self._shards):
                thread = threading.Thread(
                    target=self._worker,
                    name=f"repro-serve-shard-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def close(
        self,
        *,
        cancel_pending: bool = False,
        timeout: Optional[float] = None,
    ) -> None:
        """Stop accepting requests and shut the shards down.

        By default every already-admitted request is still served (drain
        semantics) and every open streaming session is drained — all its
        in-flight feed futures resolve with reports;
        ``cancel_pending=True`` cancels queued futures instead
        (in-flight batches always finish) and cancels open sessions,
        whose unresolved feed futures fail with
        :class:`~repro.errors.SessionClosed`.  Either way no future is
        left unresolved.  *timeout* bounds the join per shard; expiry
        raises :class:`~repro.errors.ServeError` — the deadlock guard
        the stress tests rely on.  Idempotent.
        """
        with self._cond:
            self._closing = True
            if cancel_pending or not self._started:
                # an unstarted server has nothing to drain the queue with
                dropped = self._queue.drain()
                for request in dropped:
                    request.future.cancel()
                if dropped:
                    self.metrics.record_cancelled(len(dropped))
            self._cond.notify_all()
            threads, self._threads = self._threads, []
            sessions = list(self._sessions.values())
        # sessions close before the pool does: a draining session still
        # needs its worker for the final flush
        for session in sessions:
            session.close(drain=not cancel_pending, timeout=timeout)
        stuck = []
        for thread in threads:
            thread.join(timeout)
            if thread.is_alive():
                stuck.append(thread.name)
        if stuck:
            # deadlock guard: a stuck shard may be blocked inside a
            # worker conversation still holding that worker's dispatch
            # lock, so the graceful pool close below could hang behind
            # it — tear the workers down without taking any lock, then
            # report the stuck shard(s)
            if self._pool is not None:
                self._pool.kill()
            raise ServeError(
                f"shard {', '.join(stuck)} did not stop within "
                f"{timeout}s"
            )
        if self._pool is not None:
            # after the shard threads joined no batch is in flight, so
            # the workers are idle and stop gracefully
            self._pool.close(timeout)

    def stop(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Shut the server down; *drain* picks the queued requests' fate.

        ``drain=True`` (default) serves every already-admitted request
        before stopping — :meth:`close`'s drain semantics.
        ``drain=False`` cancels queued futures instead (in-flight
        batches still finish).  Either way **no future is left
        unresolved**: by the time ``stop`` returns, every admitted
        future holds a report, an exception, or a cancellation — the
        invariant the chaos suite pins under concurrent load.
        """
        self.close(cancel_pending=not drain, timeout=timeout)

    def __enter__(self) -> "SimulationServer":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        with self._lock:
            return self._closing

    @property
    def pending(self) -> int:
        """Requests admitted but not yet picked into a batch."""
        with self._lock:
            return len(self._queue)

    def health(self) -> dict[str, object]:
        """Operational snapshot: mode, queue depth, workers, metrics.

        One call answers "is this server healthy": the sharding mode,
        whether it is closed, the queue depth, the full metrics
        snapshot, and — with process shards — the pool's per-slot
        supervision state (pid, liveness, breaker status, restart
        counts) plus its hang/quarantine/breaker totals.  Thread-mode
        servers report an empty ``workers`` list.
        """
        with self._lock:
            sessions = list(self._sessions.values())
        snapshot: dict[str, object] = {
            "mode": "process" if self._pool is not None else "thread",
            "closed": self.closed,
            "pending": self.pending,
            "metrics": self.metrics.snapshot(),
            "sessions": [session.metrics() for session in sessions],
            "workers": [],
        }
        if self._pool is not None:
            snapshot.update(self._pool.health())
        return snapshot

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _admit(
        self,
        netlist: WaveNetlist,
        streams: Sequence[WaveStream],
        clocking: Optional[ClockingScheme],
        pipelined: Optional[bool],
        deadline_s: Optional[float] = None,
    ) -> list[SimulationRequest]:
        """Validate, compile, and enqueue a burst under one lock hold.

        The shared admission path of :meth:`submit` (burst of one) and
        :meth:`submit_many`.  Admission is all-or-nothing: if the burst
        does not fit under ``max_pending`` nothing is enqueued and
        :class:`~repro.errors.ServerQueueFull` carries the whole burst
        back to the caller.  *deadline_s* (``None`` inherits the
        server's ``default_deadline_s``) is resolved to an absolute
        deadline against the submission clock; an already-expired
        request is still admitted — it fails fast with
        :class:`~repro.errors.DeadlineExceeded` at batch formation,
        never reaching a kernel.
        """
        clocking = clocking or self._clocking
        pipelined = (
            self._pipelined if pipelined is None else bool(pipelined)
        )
        if deadline_s is None:
            deadline_s = self._default_deadline_s
        elif deadline_s < 0:
            raise ServeError("deadline_s must be >= 0")
        # snapshot list payloads row-deep (callers may reuse and mutate
        # their buffers — including the inner rows — after submitting);
        # ndarray payloads are taken by reference: the documented wire
        # format is an immutable-by-convention (waves, inputs) block,
        # and copying it per request would dominate the admission cost
        snapshots = [
            vectors if isinstance(vectors, np.ndarray)
            else [list(row) for row in vectors]
            for vectors in streams
        ]
        for vectors in snapshots:
            _validate_vectors(netlist, vectors)
        compiled = compile_netlist(netlist, clocking)
        if compiled.depth == 0:
            raise SimulationError("cannot wave-simulate a depth-0 netlist")
        key = GroupKey(
            netlist_id=id(netlist),
            version=netlist.version,
            n_phases=clocking.n_phases,
            pipelined=pipelined,
        )
        submitted_at = time.perf_counter()
        deadline_at = (
            None if deadline_s is None else submitted_at + deadline_s
        )
        requests = [
            SimulationRequest(
                netlist=netlist,
                vectors=vectors,
                clocking=clocking,
                pipelined=pipelined,
                future=Future(),
                key=key,
                submitted_at=submitted_at,
                deadline_at=deadline_at,
            )
            for vectors in snapshots
        ]
        if len(requests) > self._queue.max_pending:
            # no amount of draining can ever admit this burst — a
            # retry loop on ServerQueueFull would spin forever, so
            # report the misuse distinctly
            raise ServeError(
                f"burst of {len(requests)} requests exceeds the "
                f"server's capacity ({self._queue.max_pending}); "
                "split the burst"
            )
        with self._cond:
            if self._closing:
                raise ServerClosed("server is closed")
            try:
                self._queue.ensure_room(len(requests))
            except ServerQueueFull:
                # all-or-nothing admission refuses the whole burst, so
                # the rejected ledger grows by every request in it
                self.metrics.record_rejected(len(requests))
                raise
            # plan-cache accounting only for admitted submissions, so
            # hits + misses == admission bursts and rejected traffic
            # never pins a netlist
            plan_key = (id(netlist), clocking.n_phases)
            known = self._plans.get(plan_key)
            if known is not None and known[1] == netlist.version:
                self._plans.move_to_end(plan_key)
                self.metrics.record_plan_cache(hit=True)
            else:
                self._plans[plan_key] = (netlist, netlist.version)
                self.metrics.record_plan_cache(hit=False)
                while len(self._plans) > PLAN_CACHE_LIMIT:
                    self._plans.popitem(last=False)
            for request in requests:
                self._queue.push(request)
            self.metrics.record_submitted(
                len(requests),
                sum(request.n_waves for request in requests),
            )
            self._cond.notify_all()
        return requests

    def submit(
        self,
        netlist: WaveNetlist,
        vectors: WaveStream,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> "Future[WaveSimulationReport]":
        """Enqueue one wave stream; returns its completion future.

        Validation (vector widths, unsimulatable netlist) happens here,
        in the caller's thread, so malformed requests fail fast with the
        engine's own :class:`~repro.errors.SimulationError` instead of
        poisoning a batch.  The netlist is compiled (memoized per
        :attr:`~repro.core.wavepipe.components.WaveNetlist.version`) at
        most once per version — later submissions and every batch reuse
        the cached plan, which the ``plan_cache_*`` metrics record.

        *deadline_s* bounds how long the request may wait for dispatch
        (``None`` inherits the server's ``default_deadline_s``); past
        it the future fails with
        :class:`~repro.errors.DeadlineExceeded` without the request
        ever being simulated.

        Raises :class:`~repro.errors.ServerClosed` after :meth:`close`
        and :class:`~repro.errors.ServerQueueFull` when the bounded
        queue is at capacity.
        """
        (request,) = self._admit(
            netlist, [vectors], clocking, pipelined, deadline_s
        )
        return request.future

    def submit_many(
        self,
        netlist: WaveNetlist,
        streams: Sequence[WaveStream],
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> "list[Future[WaveSimulationReport]]":
        """Enqueue a burst of wave streams; one future per stream.

        The multiplexed-client API: one admission (one lock hold, one
        compiled-plan lookup, all-or-nothing backpressure) admits the
        whole burst, which the batcher is then free to coalesce with
        everyone else's traffic.  Semantically identical to calling
        :meth:`submit` per stream — every report is still bit-identical
        to that stream's solo run — just with the per-request admission
        overhead amortized.  *deadline_s* applies to every stream of
        the burst, measured from this one admission.
        """
        if not streams:
            return []
        requests = self._admit(
            netlist, streams, clocking, pipelined, deadline_s
        )
        return [request.future for request in requests]

    async def submit_async(
        self,
        netlist: WaveNetlist,
        vectors: WaveStream,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
    ) -> WaveSimulationReport:
        """Asyncio façade: await the report of one submitted stream.

        Submission itself (validation, compile, backpressure) runs
        inline in the event-loop thread — it is cheap and raising
        :class:`~repro.errors.ServerQueueFull` synchronously is exactly
        the backpressure an async caller wants — while the simulation
        happens on the shard threads and the returned future is awaited
        without blocking the loop.
        """
        future = self.submit(
            netlist, vectors, clocking=clocking, pipelined=pipelined,
            deadline_s=deadline_s,
        )
        return await asyncio.wrap_future(future)

    def simulate(
        self,
        netlist: WaveNetlist,
        vectors: WaveStream,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> WaveSimulationReport:
        """Submit one stream and block for its report (submit + result)."""
        return self.submit(
            netlist, vectors, clocking=clocking, pipelined=pipelined,
            deadline_s=deadline_s,
        ).result(timeout)

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def open_stream(
        self,
        netlist: WaveNetlist,
        *,
        clocking: Optional[ClockingScheme] = None,
        pipelined: Optional[bool] = None,
        route_key: object = None,
    ) -> "ServerSession":
        """Open a streaming session over *netlist* (see :class:`ServerSession`).

        The session's packed engine state — step counter, value matrix,
        lane layout — persists across :meth:`~ServerSession.feed` calls,
        so a stream of chunks costs one pipeline fill instead of one per
        chunk; with process shards the session is sticky to one worker
        slot (*route_key* overrides the routing key, default: the
        session id) and survives worker crashes by feed-log replay.
        Raises the engine's :class:`~repro.errors.SimulationError` here,
        synchronously, when *netlist* is not wave-ready — streaming
        bit-identity is impossible without path balance — and
        :class:`~repro.errors.ServerClosed` after :meth:`close`.
        """
        clocking = clocking or self._clocking
        pipelined = (
            self._pipelined if pipelined is None else bool(pipelined)
        )
        with self._cond:
            if self._closing:
                raise ServerClosed("server is closed")
            session_id = f"stream-{next(self._session_seq)}"
        session = ServerSession(
            self, session_id, netlist, clocking, pipelined, route_key
        )
        with self._cond:
            lost_race = self._closing
            if not lost_race:
                self._sessions[session_id] = session
        if lost_race:
            # close() ran between the id grab and the registration: the
            # new session would never be drained by it, so cancel now
            session.close(drain=False)
            raise ServerClosed("server is closed")
        self.metrics.record_session_open()
        return session

    def _forget_session(self, session_id: str) -> None:
        """Drop a finished session from the registry (dispatcher thread)."""
        with self._cond:
            self._sessions.pop(session_id, None)

    # ------------------------------------------------------------------
    # shard workers
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        """One shard: expire, seed a batch, linger, simulate, resolve."""
        while True:
            batch: Optional[Batch] = None
            expired: list[SimulationRequest] = []
            stop = False
            with self._cond:
                while True:
                    # deadline admission: requests already past their
                    # deadline leave the queue *before* a batch is
                    # packed around them, so they never cost kernel or
                    # packing work; their futures are failed outside
                    # the lock (Future callbacks may re-enter submit)
                    expired.extend(
                        self._batcher.expire(time.perf_counter())
                    )
                    # lint: determinism-unordered-ok(membership-only skip set; start_batch never iterates it)
                    batch = self._batcher.start_batch(self._busy)
                    if batch is not None:
                        # claim the group *before* lingering: another
                        # shard must not split this netlist's queue into
                        # a concurrent batch (responses would reorder
                        # and coalescing would fragment)
                        self._busy.add(batch.key)
                        break
                    if expired:
                        break  # fail them promptly, then come back
                    if self._closing and len(self._queue) == 0:
                        stop = True
                        break
                    self._cond.wait()
                if (
                    batch is not None
                    and self._max_linger_steps
                    and not self._closing
                    and not self._batcher.is_full(batch)
                ):
                    # adaptive linger: a round that coalesced something
                    # resets the budget, so a burst mid-arrival keeps
                    # growing the batch; only max_linger_steps *empty*
                    # rounds in a row dispatch a non-full batch
                    empty_rounds = 0
                    while empty_rounds < self._max_linger_steps:
                        # deadline-aware linger: the most urgent
                        # deadline already in the batch (or still
                        # queued for this group) caps the wait —
                        # lingering must never expire the very
                        # requests it is batching
                        wait_s = self._linger_wait_s
                        urgent = batch.earliest_deadline
                        queued = self._queue.group_deadline(batch.key)
                        if queued is not None and (
                            urgent is None or queued < urgent
                        ):
                            urgent = queued
                        if urgent is not None:
                            slack_s = (
                                urgent
                                - time.perf_counter()
                                - DEADLINE_LINGER_MARGIN_S
                            )
                            if slack_s <= 0.0:
                                break  # dispatch now, before expiry
                            wait_s = min(wait_s, slack_s)
                        self._cond.wait(timeout=wait_s)
                        expired.extend(
                            self._batcher.expire(
                                time.perf_counter(), key=batch.key
                            )
                        )
                        added = self._batcher.top_up(batch)
                        if self._closing or self._batcher.is_full(batch):
                            break
                        empty_rounds = 0 if added else empty_rounds + 1
            if expired:
                self._fail_expired(expired)
            if stop:
                return
            if batch is None:
                continue
            try:
                self._run_batch(batch)
            finally:
                with self._cond:
                    self._busy.discard(batch.key)
                    self._cond.notify_all()

    def _fail_expired(self, requests: list[SimulationRequest]) -> None:
        """Resolve expired requests: ``DeadlineExceeded``, never a kernel.

        Called outside the server lock.  Requests whose futures were
        already cancelled by the caller count as cancellations, exactly
        like cancelled requests reaped at dispatch.
        """
        live = [
            request
            for request in requests
            if request.future.set_running_or_notify_cancel()
        ]
        if dropped := len(requests) - len(live):
            self.metrics.record_cancelled(dropped)
        if not live:
            return
        now = time.perf_counter()
        for request in live:
            assert request.deadline_at is not None  # only deadlined expire
            late_ms = (now - request.deadline_at) * 1e3
            request.future.set_exception(
                DeadlineExceeded(
                    f"request deadline passed {late_ms:.1f} ms before "
                    "dispatch; the request was dropped without being "
                    "simulated"
                )
            )
        self.metrics.record_expired(len(live))

    def _run_batch(self, batch: Batch) -> None:
        """Execute one coalesced batch and resolve its futures."""
        # last deadline check before any packing work: the linger (or a
        # long wait for a busy shard) may have outlasted a deadline
        now = time.perf_counter()
        overdue = [r for r in batch.requests if r.expired(now)]
        if overdue:
            batch.requests = [
                r for r in batch.requests if not r.expired(now)
            ]
            self._fail_expired(overdue)
        live = [
            request
            for request in batch.requests
            if request.future.set_running_or_notify_cancel()
        ]
        if dropped := len(batch.requests) - len(live):
            self.metrics.record_cancelled(dropped)
        if not live:
            return
        try:
            plan = self._batcher.plan(
                batch, backend=self._backend, track=self._track
            )
            streams = [request.vectors for request in live]
            if self._pool is not None:
                reports = self._pool.simulate(
                    batch.netlist,
                    streams,
                    n_phases=batch.clocking.n_phases,
                    pipelined=batch.pipelined,
                    backend=self._backend,
                    track=self._track,
                    route_key=batch.key,
                )
            else:
                if self._faults is not None:
                    # thread-mode fault site: there is no worker process
                    # to kill, so the process-fatal kinds degrade to a
                    # typed ShardFailed on this batch (the futures-
                    # resolve-with-typed-errors contract is exercised
                    # even without process shards); "slow" sleeps,
                    # "hang" has no thread-mode analogue (a shard
                    # thread cannot be reaped) and is skipped
                    fault = self._faults.next_fault(route_key=batch.key)
                    if fault is not None:
                        if fault.kind == "slow":
                            time.sleep(fault.delay_s)
                        elif fault.kind != "hang":
                            raise ShardFailed(
                                f"injected {fault.kind} fault "
                                "(thread-mode stand-in for a worker "
                                "crash)"
                            )
                reports = simulate_streams_packed(
                    batch.netlist,
                    streams,
                    clocking=batch.clocking,
                    pipelined=batch.pipelined,
                    strict=False,
                    backend=self._backend,
                    track=self._track,
                    validate=False,  # every stream validated at submit
                )
        except BaseException as error:  # resolve futures, never kill a shard
            for request in live:
                request.future.set_exception(error)
            self.metrics.record_failed(len(live))
            if isinstance(error, ShardFailed):
                self.metrics.record_shard_failed(len(live))
            return
        # metrics first: a client that observes its resolved future may
        # immediately read metrics.snapshot() and must not see the
        # completed batch under-counted
        self.metrics.record_batch(
            len(live),
            sum(request.n_waves for request in live),
            plan["words"],
        )
        self.metrics.record_completed(len(live))
        for request, report in zip(live, reports):
            request.future.set_result(report)


@dataclass
class _FeedItem:
    """One queued :meth:`ServerSession.feed` awaiting dispatch."""

    future: "Future[WaveSimulationReport]"
    block: object  # wire block: (waves, inputs) bool ndarray, or []
    n_waves: int
    deadline_at: Optional[float]
    resolved: bool = False  # future already carries a result/exception


class ServerSession:
    """One streaming simulation session (see :meth:`SimulationServer.open_stream`).

    A session is a stateful counterpart of :meth:`SimulationServer.submit`:
    every :meth:`feed` appends waves to **one persistent packed engine**
    (:class:`~repro.core.wavepipe.batch.PackedSession`) instead of
    packing a fresh batch, so the pipeline fill and the per-plan state
    are amortized across the whole stream.  Feeds resolve through
    futures, in feed order, with reports bit-identical to the matching
    slice of one solo run over the concatenated waves.

    Execution model: each session owns a dispatcher thread draining its
    own FIFO — feeds of one session are strictly ordered (the state is
    cumulative), while different sessions run concurrently on their own
    workers.  With process shards the engine lives worker-side, sticky
    to one slot (``hash(route key) % n_workers``); in thread mode it
    lives on the dispatcher thread itself.  A feed dequeued with more
    feeds behind it is *pumped* (inject only — the pipeline stays warm);
    a feed that empties the queue is *flushed* so its future resolves
    promptly — a blocking feed-then-wait client never deadlocks, and a
    pipelined client keeps the engine hot.

    Supervision: losing the worker mid-session (crash, hang, injected
    chaos) does not lose the stream — the session keeps a **feed log**
    of every dispatched block and replays it onto a freshly opened
    worker-side session, bit-identically by kernel determinism, up to
    :data:`SESSION_REPLAY_BUDGET` losses (then
    :class:`~repro.errors.ShardFailed` quarantines the session).
    Deadlines are honored at dispatch: an expired feed's waves are
    dropped — never simulated, never logged — and its future fails with
    :class:`~repro.errors.DeadlineExceeded`.

    Obtain sessions only via :meth:`SimulationServer.open_stream`; use
    as a context manager or :meth:`close` explicitly (the lifecycle
    lint tracks sessions like files and locks).
    """

    def __init__(
        self,
        server: "SimulationServer",
        session_id: str,
        netlist: WaveNetlist,
        clocking: ClockingScheme,
        pipelined: bool,
        route_key: object,
    ) -> None:
        self._server = server
        self.session_id = session_id
        self._netlist = netlist
        self._clocking = clocking
        self._pipelined = pipelined
        self._route = route_key if route_key is not None else session_id
        self._cond = threading.Condition(threading.Lock())
        self._queue: "deque[_FeedItem]" = deque()
        self._sent: list[_FeedItem] = []  # dispatched; index == worker index
        self._log: list[object] = []  # blocks of dispatched feeds (replay)
        self._closed = False
        self._drain = True
        self._done = threading.Event()
        self._broken: Optional[BaseException] = None
        self._n_feeds = 0
        self._fed_waves = 0
        self._expired = 0
        self._cancelled = 0
        self._replays = 0
        # open the engine before the dispatcher exists, so open-time
        # errors (unbalanced netlist, depth 0) raise synchronously from
        # open_stream with their engine types
        self._engine: Optional[PackedSession] = None
        self._slot: Optional[int] = None
        if server._pool is not None:
            self._slot = server._pool.session_open(
                session_id,
                netlist,
                n_phases=clocking.n_phases,
                pipelined=pipelined,
                backend=server._backend,
                track=server._track,
                route_key=self._route,
            )
        else:
            self._engine = open_packed_session(
                netlist,
                clocking=clocking,
                pipelined=pipelined,
                backend=server._backend,
                track=server._track,
                validate=False,  # feeds validate in the caller's thread
            )
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-serve-{session_id}",
            daemon=True,
        )
        self._thread.start()

    # -- public surface ------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def feed(
        self,
        vectors: WaveStream,
        *,
        deadline_s: Optional[float] = None,
    ) -> "Future[WaveSimulationReport]":
        """Append a chunk of waves to the stream; returns its future.

        Validation happens here, synchronously in the caller's thread
        (malformed chunks fail fast, exactly like :meth:`SimulationServer.
        submit`); the simulation itself runs on the session's dispatcher
        and the future resolves once every wave of *this* chunk has
        retired from the pipeline.  *deadline_s* (``None`` inherits the
        server's ``default_deadline_s``) bounds how long the chunk may
        wait for dispatch.  Raises :class:`~repro.errors.SessionClosed`
        after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise SessionClosed(
                    f"feed() on closed session {self.session_id}"
                )
            broken = self._broken
        if broken is not None:
            raise SessionClosed(
                f"session {self.session_id} is broken: {broken}"
            )
        _validate_vectors(self._netlist, vectors)
        if deadline_s is None:
            deadline_s = self._server._default_deadline_s
        elif deadline_s < 0:
            raise ServeError("deadline_s must be >= 0")
        deadline_at = (
            None
            if deadline_s is None
            else time.perf_counter() + deadline_s
        )
        count = len(vectors)
        # same snapshot convention as request admission: list payloads
        # are copied by the asarray, ndarray payloads pass by reference
        # (the documented immutable-by-convention wire block)
        block: object = (
            np.asarray(vectors, dtype=bool) if count else []
        )
        item = _FeedItem(Future(), block, count, deadline_at)
        with self._cond:
            if self._closed:
                raise SessionClosed(
                    f"feed() on closed session {self.session_id}"
                )
            self._queue.append(item)
            self._n_feeds += 1
            self._fed_waves += count
            self._cond.notify_all()
        self._server.metrics.record_session_feed(count)
        return item.future

    def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """End the stream; blocks until every feed future is resolved.

        ``drain=True`` (default) dispatches everything still queued and
        flushes the engine, so every future resolves with its report —
        the session-level mirror of the server's drain semantics.
        ``drain=False`` cancels instead: queued and in-flight feeds fail
        with :class:`~repro.errors.SessionClosed` and the engine state
        is dropped.  Either way **no feed future is left unresolved**.
        Idempotent; *timeout* bounds the wait and raises
        :class:`~repro.errors.ServeError` on expiry.
        """
        dropped: list[_FeedItem] = []
        with self._cond:
            if not self._closed:
                self._closed = True
                self._drain = drain
                if not drain:
                    dropped = list(self._queue)
                    self._queue.clear()
                self._cond.notify_all()
        for item in dropped:
            if item.future.set_running_or_notify_cancel():
                item.resolved = True
                item.future.set_exception(
                    SessionClosed(
                        f"session {self.session_id} cancelled before "
                        "this feed was dispatched"
                    )
                )
            else:
                self._cancelled += 1
        if not self._done.wait(timeout):
            raise ServeError(
                f"session {self.session_id} did not close within "
                f"{timeout}s"
            )

    def __enter__(self) -> "ServerSession":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def metrics(self) -> dict[str, object]:
        """Per-session counters (the ``open_stream`` metrics surface)."""
        with self._cond:
            pending = len(self._queue)
            closed = self._closed
            n_feeds = self._n_feeds
            fed_waves = self._fed_waves
        return {
            "session_id": self.session_id,
            "mode": "thread" if self._engine is not None else "process",
            "slot": self._slot,
            "feeds": n_feeds,
            "waves": fed_waves,
            "dispatched": len(self._sent),
            "resolved": sum(1 for item in self._sent if item.resolved),
            "expired": self._expired,
            "cancelled": self._cancelled,
            "replays": self._replays,
            "pending_feeds": pending,
            "closed": closed,
        }

    # -- dispatcher thread ---------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._queue:
                    item = self._queue.popleft()
                    backlog = bool(self._queue)
                else:
                    drain = self._drain
                    break
            # backlog => pump (keep the pipeline warm for the feeds
            # right behind); empty queue => flush (resolve promptly)
            self._process(item, flush=not backlog)
        self._finish(drain)
        self._done.set()

    def _process(self, item: _FeedItem, flush: bool) -> None:
        if self._broken is not None:
            self._fail_unrun(
                item,
                SessionClosed(
                    f"session {self.session_id} is broken: {self._broken}"
                ),
            )
            return
        now = time.perf_counter()
        if item.deadline_at is not None and now > item.deadline_at:
            self._expired += 1
            late_ms = (now - item.deadline_at) * 1e3
            self._fail_unrun(
                item,
                DeadlineExceeded(
                    f"session feed deadline passed {late_ms:.1f} ms "
                    "before dispatch; its waves were dropped without "
                    "being simulated"
                ),
            )
            return
        if not item.future.set_running_or_notify_cancel():
            self._cancelled += 1
            return
        # from here the feed is part of the stream: its block enters the
        # replay log and its worker-side index is len(_sent) - 1
        self._sent.append(item)
        self._log.append(item.block)
        try:
            if self._engine is not None:
                self._engine.feed(item.block)  # type: ignore[arg-type]
                if flush:
                    self._engine.flush()
                    done = self._engine.take_done()
                else:
                    # pump() consumes the take_done cursor itself
                    done = self._engine.pump()
                pairs: list = [
                    (handle.index, handle.report) for handle in done
                ]
            else:
                pairs = self._dispatch_feed(item.block, flush)
        except BaseException as error:
            # the engine (or the pool, past its replay budget) refused
            # the feed; whether the block was applied is unknowable, so
            # poison the session rather than risk a divergent stream
            self._sent.pop()
            self._log.pop()
            self._broken = error
            item.resolved = True
            item.future.set_exception(error)
            return
        self._apply(pairs)

    def _fail_unrun(
        self, item: _FeedItem, error: BaseException
    ) -> None:
        """Fail a feed that never dispatched (respecting cancellation)."""
        if item.future.set_running_or_notify_cancel():
            item.resolved = True
            item.future.set_exception(error)
        else:
            self._cancelled += 1

    def _apply(self, pairs: list) -> None:
        """Resolve futures from worker ``(feed index, report)`` pairs.

        Replays re-deliver reports for feeds that resolved before the
        crash; determinism makes them equal, so they are skipped.
        """
        for index, report in pairs:
            item = self._sent[index]
            if not item.resolved:
                item.resolved = True
                item.future.set_result(report)

    def _dispatch_feed(self, block: object, flush: bool) -> list:
        pool = self._server._pool
        assert pool is not None and self._slot is not None
        attempts = 0
        replay_upto: Optional[int] = None
        while True:
            try:
                # the replay runs *inside* the try: a worker lost mid
                # -replay is one more counted attempt, not an escape
                if replay_upto is not None:
                    self._replay(replay_upto)
                    replay_upto = None
                return pool.session_feed(
                    self.session_id,
                    self._slot,
                    block,
                    flush=flush,
                    route_key=self._route,
                )
            except SessionWorkerLost as lost:
                attempts += 1
                if attempts > SESSION_REPLAY_BUDGET:
                    raise ShardFailed(
                        f"session {self.session_id} lost its worker "
                        f"{attempts} times (last: {lost.reason}); "
                        "session quarantined — only this stream fails, "
                        "the server keeps serving"
                    ) from None
                replay_upto = len(self._log) - 1

    def _dispatch_close(self) -> list:
        pool = self._server._pool
        assert pool is not None and self._slot is not None
        attempts = 0
        replay = False
        while True:
            try:
                if replay:
                    self._replay(len(self._log))
                    replay = False
                return pool.session_close(
                    self.session_id, self._slot, drain=True
                )
            except SessionWorkerLost as lost:
                attempts += 1
                if attempts > SESSION_REPLAY_BUDGET:
                    raise ShardFailed(
                        f"session {self.session_id} lost its worker "
                        f"{attempts} times during drain (last: "
                        f"{lost.reason}); session quarantined"
                    ) from None
                replay = True

    def _replay(self, upto: int) -> None:
        """Rebuild the worker-side session from the first *upto* feeds.

        The checkpoint is the feed log itself: a fresh worker session is
        opened on a healthy slot and every logged block is re-fed in
        order.  Kernel determinism makes the replay **bit-identical** to
        the uninterrupted run — reports that already resolved before the
        loss re-resolve to equal values (and are dropped by
        :meth:`_apply`); unresolved feeds pick up exactly where they
        were.  A loss *during* the replay propagates to the caller's
        retry loop, which counts it against the replay budget.
        """
        pool = self._server._pool
        assert pool is not None
        self._replays += 1
        self._server.metrics.record_session_replay()
        self._slot = pool.session_open(
            self.session_id,
            self._netlist,
            n_phases=self._clocking.n_phases,
            pipelined=self._pipelined,
            backend=self._server._backend,
            track=self._server._track,
            route_key=self._route,
        )
        for block in self._log[:upto]:
            pairs = pool.session_feed(
                self.session_id,
                self._slot,
                block,
                flush=False,
                route_key=self._route,
            )
            self._apply(pairs)

    def _finish(self, drain: bool) -> None:
        """Close the engine and resolve whatever is still unresolved."""
        error: Optional[BaseException] = None
        try:
            if drain and self._broken is None:
                if self._engine is not None:
                    self._engine.close()
                    self._apply(
                        [
                            (handle.index, handle.report)
                            for handle in self._engine.take_done()
                        ]
                    )
                else:
                    self._apply(self._dispatch_close())
            else:
                if self._engine is not None:
                    self._engine.discard()
                elif self._server._pool is not None:
                    try:
                        self._server._pool.session_close(
                            self.session_id,
                            self._slot if self._slot is not None else 0,
                            drain=False,
                        )
                    except (SessionWorkerLost, ServeError):
                        pass  # an undrained close has nothing to lose
        except BaseException as caught:
            error = caught
        leftover: BaseException = (
            error
            if error is not None
            else SessionClosed(
                f"session {self.session_id} closed without draining"
            )
        )
        for item in self._sent:
            if not item.resolved:
                item.resolved = True
                item.future.set_exception(leftover)
        self._server._forget_session(self.session_id)
        self._server.metrics.record_session_close()


@contextmanager
def graceful_drain(server: SimulationServer) -> Iterator[SimulationServer]:
    """SIGTERM => drain: serve every admitted request, then stop.

    Inside the ``with`` block a SIGTERM (the orchestration world's
    shutdown signal) closes *server* with drain semantics from a
    background thread: new submissions fail with
    :class:`~repro.errors.ServerClosed` immediately, every
    already-admitted future still resolves, and the signal handler
    itself returns at once (``server.stop`` blocks, so it cannot run in
    the handler frame).  The previous SIGTERM disposition is restored on
    exit.  Signal handlers are a main-thread-only facility; calling this
    from another thread raises :class:`~repro.errors.ServeError`.
    """
    if threading.current_thread() is not threading.main_thread():
        raise ServeError(
            "graceful_drain installs a signal handler and must be "
            "entered from the main thread"
        )

    def _drain(signum: int, frame: object) -> None:
        threading.Thread(
            target=lambda: server.stop(drain=True),
            name="repro-serve-drain",
            daemon=True,
        ).start()

    previous = signal.signal(signal.SIGTERM, _drain)
    try:
        yield server
    finally:
        signal.signal(signal.SIGTERM, previous)
