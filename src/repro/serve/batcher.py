"""Coalescing micro-batcher: pending requests -> one packed pass.

The batcher is pure batching *policy*.  It decides which group a shard
serves next (round-robin via the queue), how many requests one batch
carries (``max_batch_requests``), and how many total waves
(``max_batch_waves``) — and it asks the packed engine's own lane planner
(:func:`~repro.core.wavepipe.batch.plan_stream_batch`) how the batch will
pack, so sizing and execution share one source of truth.  Locking, the
linger wait, and running the batch belong to the server.

Why these defaults: every stream in a packed pass occupies at least one
lane, so a batch of ``n`` requests needs at least ``ceil(n / 64)`` state
words.  :data:`DEFAULT_MAX_BATCH_REQUESTS` = 256 keeps a worst-case
one-lane-per-stream batch at 4 words, comfortably inside the planner's
:data:`~repro.core.wavepipe.batch.MAX_PLANNED_WORDS` soft cap (16 words),
while :data:`DEFAULT_MAX_BATCH_WAVES` bounds the injection-packing
footprint of one pass regardless of per-request stream lengths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.wavepipe.batch import (
    LANES_PER_WORD,
    MAX_PLANNED_WORDS,
    plan_stream_batch,
)
from ..core.wavepipe.clocking import ClockingScheme
from ..core.wavepipe.components import WaveNetlist
from .queue import GroupKey, RequestQueue, SimulationRequest

#: Default cap on requests coalesced into one packed pass (see module
#: docstring for the lane-planner rationale).
DEFAULT_MAX_BATCH_REQUESTS = 256

#: Default cap on the total waves of one packed pass.
DEFAULT_MAX_BATCH_WAVES = 65_536

#: Waves-per-lane multiplier of :func:`adaptive_max_batch_waves`: past
#: this many injection rounds per lane, adding waves to a pass only
#: deepens each lane's schedule without adding any parallelism, so the
#: batcher is better off cutting the batch and starting the next one.
ADAPTIVE_WAVES_PER_LANE = 8


def adaptive_max_batch_waves(
    max_words: int = MAX_PLANNED_WORDS,
    waves_per_lane: int = ADAPTIVE_WAVES_PER_LANE,
) -> int:
    """Wave cap of one packed pass, derived from the planner's word cap.

    The lane planner never plans more than *max_words* state words —
    ``max_words * 64`` lanes — per pass, so a batch wider than
    ``lanes x waves_per_lane`` waves cannot buy more parallelism: the
    surplus waves just stack extra injection slots onto every lane while
    the whole batch's futures wait for the last slot to retire.  Tying
    the cap to :data:`~repro.core.wavepipe.batch.MAX_PLANNED_WORDS`
    (instead of the static :data:`DEFAULT_MAX_BATCH_WAVES`) keeps the
    two in lockstep if the planner's budget ever changes — one source of
    truth, same as the request cap's rationale.
    """
    if max_words < 1:
        raise ValueError("max_words must be at least 1")
    if waves_per_lane < 1:
        raise ValueError("waves_per_lane must be at least 1")
    return max_words * LANES_PER_WORD * waves_per_lane


@dataclass
class Batch:
    """One group of requests about to share a single packed pass."""

    key: GroupKey
    requests: list[SimulationRequest] = field(default_factory=list)

    @property
    def netlist(self) -> WaveNetlist:
        """The shared netlist (every request in a batch agrees on it)."""
        return self.requests[0].netlist

    @property
    def clocking(self) -> ClockingScheme:
        """The shared clocking scheme (part of the group key)."""
        return self.requests[0].clocking

    @property
    def pipelined(self) -> bool:
        """The shared injection mode (part of the group key)."""
        return self.key.pipelined

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def n_waves(self) -> int:
        """Total waves across every request of the batch."""
        return sum(request.n_waves for request in self.requests)

    @property
    def earliest_deadline(self) -> Optional[float]:
        """Soonest ``deadline_at`` already *in* the batch, if any.

        The deadline-aware linger caps its wait on this (and on the
        queue's :meth:`~repro.serve.queue.RequestQueue.group_deadline`):
        lingering for stragglers must never push a request already
        admitted to the batch past its own deadline.
        """
        return min(
            (
                request.deadline_at
                for request in self.requests
                if request.deadline_at is not None
            ),
            default=None,
        )


class Batcher:
    """Forms per-netlist batches from a :class:`RequestQueue`.

    The queue-touching methods (:meth:`start_batch`, :meth:`top_up`)
    must be called with the server's lock held — the queue is not
    thread-safe.  :meth:`plan` and :meth:`is_full` touch no queue state;
    ``plan`` is called by shard workers *outside* the server lock and
    guards its own memo with a dedicated lock.
    """

    def __init__(
        self,
        queue: RequestQueue,
        max_batch_requests: int = DEFAULT_MAX_BATCH_REQUESTS,
        max_batch_waves: int = DEFAULT_MAX_BATCH_WAVES,
    ) -> None:
        if max_batch_requests < 1:
            raise ValueError("max_batch_requests must be at least 1")
        if max_batch_waves < 1:
            raise ValueError("max_batch_waves must be at least 1")
        self.queue = queue
        self.max_batch_requests = int(max_batch_requests)
        self.max_batch_waves = int(max_batch_waves)
        self._plan_memo: dict = {}
        self._plan_lock = threading.Lock()

    #: Bound on the memoized batch plans (see :meth:`plan`).
    _PLAN_MEMO_LIMIT = 64

    def expire(
        self, now: float, key: Optional[GroupKey] = None
    ) -> list[SimulationRequest]:
        """Batch admission, step zero: evict requests past their deadline.

        Called (with the server's lock held, like every queue-touching
        method) before seeding a batch and between linger top-ups, so an
        expired request is never packed — no lane planning, no injection
        packing, no kernel step is ever spent on it.  The server fails
        the returned requests' futures with
        :class:`~repro.errors.DeadlineExceeded` outside the lock.
        """
        return self.queue.expire(now, key=key)

    def start_batch(self, busy: Iterable[GroupKey]) -> Optional[Batch]:
        """Seed a batch from the next non-busy group, or ``None``.

        Groups in *busy* are being simulated by another shard right now;
        skipping them is what lets independent netlist groups run
        concurrently without ever splitting one group across shards
        (which would reorder responses and defeat coalescing).  Group
        choice is the queue's: round-robin for deadline-free traffic,
        earliest-deadline-first once deadlines are queued.
        """
        key = self.queue.next_key(skip=busy)
        if key is None:
            return None
        requests = self.queue.take(
            key, self.max_batch_requests, self.max_batch_waves
        )
        return Batch(key=key, requests=requests)

    def top_up(self, batch: Batch) -> int:
        """Extend *batch* with requests that arrived since it was seeded.

        Called between linger waits; respects both caps strictly (a
        request that would overflow the wave budget stays queued for the
        next batch).  Returns the number of requests added.
        """
        more = self.queue.take(
            batch.key,
            self.max_batch_requests - batch.n_requests,
            self.max_batch_waves - batch.n_waves,
            always_take_first=False,
        )
        batch.requests.extend(more)
        return len(more)

    def is_full(self, batch: Batch) -> bool:
        """True when neither cap leaves room to coalesce more requests."""
        return (
            batch.n_requests >= self.max_batch_requests
            or batch.n_waves >= self.max_batch_waves
        )

    def plan(
        self,
        batch: Batch,
        backend: Optional[str] = None,
        track: Optional[bool] = None,
    ) -> dict:
        """Lane plan of *batch* as the packed engine will run it.

        Thin wrapper over
        :func:`~repro.core.wavepipe.batch.plan_stream_batch` — the
        serving metrics record the planner's words/lanes per batch so
        operators can see how traffic actually packs.  Serving traffic
        is highly repetitive (the same netlist and request shape batch
        after batch), so the result is memoized per (group, per-stream
        lengths) with a small bounded table.
        """
        lengths = tuple(request.n_waves for request in batch.requests)
        # the netlist object itself (identity-hashed) is part of the
        # key: GroupKey's id(netlist) alone could alias a new netlist
        # allocated at a recycled address after the old one was
        # collected; holding the reference in the bounded memo keeps
        # the id stable for exactly as long as the entry lives
        cache_key = (batch.netlist, batch.key, lengths, backend, track)
        with self._plan_lock:
            cached = self._plan_memo.get(cache_key)
        if cached is not None:
            return cached
        plan = plan_stream_batch(
            batch.netlist,
            list(lengths),
            clocking=batch.clocking,
            pipelined=batch.pipelined,
            backend=backend,
            track=track,
        )
        with self._plan_lock:
            if len(self._plan_memo) >= self._PLAN_MEMO_LIMIT:
                self._plan_memo.clear()  # tiny table; reset is fine
            self._plan_memo[cache_key] = plan
        return plan
